#include "obs/metrics.h"

#include <cstdio>

namespace rescq::obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
      500.0, 1000.0};
  return kBuckets;
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.empty() ? 1
                                                         : bounds_.size()]) {
  for (size_t i = 0; i < bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  // atomic<double> has no fetch_add in C++17; a relaxed CAS loop is the
  // standard substitute and the sum is reporting-only.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      buckets_[i].fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  overflow_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Histogram::BucketCount(size_t i) const {
  if (i >= bounds_.size()) return 0;
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (size_t i = 0; i < bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  overflow_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// --- Registry ---------------------------------------------------------------

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(upper_bounds);
  return *slot;
}

const Counter* Registry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

namespace {

void AppendIndent(std::string* out, int indent) {
  out->append(static_cast<size_t>(indent), ' ');
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  // %.17g round-trips but is noisy; metrics are reporting-only, so six
  // significant digits keep snapshots short and diffable.
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

void Registry::AppendSnapshotFields(std::string* out, int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  AppendIndent(out, indent);
  out->append("\"counters\": {");
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out->append(first ? "\n" : ",\n");
    first = false;
    AppendIndent(out, indent + 2);
    AppendQuoted(out, name);
    out->append(": ");
    out->append(std::to_string(c->Value()));
  }
  if (!first) {
    out->push_back('\n');
    AppendIndent(out, indent);
  }
  out->append("},\n");

  AppendIndent(out, indent);
  out->append("\"gauges\": {");
  first = true;
  for (const auto& [name, g] : gauges_) {
    out->append(first ? "\n" : ",\n");
    first = false;
    AppendIndent(out, indent + 2);
    AppendQuoted(out, name);
    out->append(": ");
    AppendDouble(out, g->Value());
  }
  if (!first) {
    out->push_back('\n');
    AppendIndent(out, indent);
  }
  out->append("},\n");

  AppendIndent(out, indent);
  out->append("\"histograms\": {");
  first = true;
  for (const auto& [name, h] : histograms_) {
    out->append(first ? "\n" : ",\n");
    first = false;
    AppendIndent(out, indent + 2);
    AppendQuoted(out, name);
    out->append(": {\n");
    AppendIndent(out, indent + 4);
    out->append("\"buckets\": [");
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      if (i > 0) out->append(", ");
      out->append("{ \"le\": ");
      AppendDouble(out, h->bounds()[i]);
      out->append(", \"count\": ");
      out->append(std::to_string(h->BucketCount(i)));
      out->append(" }");
    }
    out->append("],\n");
    AppendIndent(out, indent + 4);
    out->append("\"overflow\": ");
    out->append(std::to_string(h->OverflowCount()));
    out->append(",\n");
    AppendIndent(out, indent + 4);
    out->append("\"count\": ");
    out->append(std::to_string(h->Count()));
    out->append(",\n");
    AppendIndent(out, indent + 4);
    out->append("\"sum\": ");
    AppendDouble(out, h->Sum());
    out->push_back('\n');
    AppendIndent(out, indent + 2);
    out->push_back('}');
  }
  if (!first) {
    out->push_back('\n');
    AppendIndent(out, indent);
  }
  out->append("}");
}

std::string Registry::SnapshotJson() const {
  std::string out;
  out.append("{\n  \"schema\": \"rescq-metrics/v1\",\n");
  AppendSnapshotFields(&out, 2);
  out.append("\n}\n");
  return out;
}

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

bool WriteMetricsJson(const Registry& registry, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = registry.SnapshotJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace rescq::obs
