#include "obs/memstats.h"

namespace rescq::obs {

void PublishMemBreakdown(const MemBreakdown& breakdown) {
  if (!MetricsEnabled()) return;
  SetGauge("mem.index_bytes", static_cast<double>(breakdown.index_bytes));
  SetGauge("mem.family_bytes", static_cast<double>(breakdown.family_bytes));
  SetGauge("mem.component_bytes",
           static_cast<double>(breakdown.component_bytes));
  SetGauge("mem.total_bytes", static_cast<double>(breakdown.TotalBytes()));
  SetGauge("mem.tuples", static_cast<double>(breakdown.tuples));
  SetGauge("mem.witness_sets", static_cast<double>(breakdown.witness_sets));
  SetGauge("mem.bytes_per_tuple", breakdown.BytesPerTuple());
  SetGauge("mem.bytes_per_witness", breakdown.BytesPerWitness());
  SetGauge("mem.arena_reserved_bytes",
           static_cast<double>(breakdown.arena_reserved_bytes));
  SetGauge("mem.arena_live_bytes",
           static_cast<double>(breakdown.arena_live_bytes));
}

}  // namespace rescq::obs
