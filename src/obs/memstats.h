#ifndef RESCQ_OBS_MEMSTATS_H_
#define RESCQ_OBS_MEMSTATS_H_

// Memory telemetry in the Pequod pqmemory style: heap footprints are
// *approximated* from container geometry (capacity x element size plus
// per-node overhead for the hash maps) rather than hooking the
// allocator, so the accounting is cheap enough to recompute after every
// epoch and identical across platforms modulo sizeof. Owners expose an
// ApproxBytes() (WitnessIndex) or ApproxMemory() (IncrementalSession)
// built from these helpers; PublishMemBreakdown turns a breakdown into
// the mem.* gauges — including the bytes/tuple and bytes/witness
// ratios the capacity-planning docs quote.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rescq::obs {

/// Heap bytes behind one vector (geometry only, not sizeof the header:
/// the header is counted by whoever embeds the vector).
template <typename T>
uint64_t VectorBytes(const std::vector<T>& v) {
  return static_cast<uint64_t>(v.capacity()) * sizeof(T);
}

/// Heap bytes behind a vector-of-vectors: outer geometry plus every
/// inner buffer.
template <typename T>
uint64_t NestedVectorBytes(const std::vector<std::vector<T>>& v) {
  uint64_t bytes = static_cast<uint64_t>(v.capacity()) * sizeof(std::vector<T>);
  for (const std::vector<T>& inner : v) bytes += VectorBytes(inner);
  return bytes;
}

/// Heap bytes behind one std::string (zero when the small-string
/// optimization holds the payload inline).
inline uint64_t StringBytes(const std::string& s) {
  return s.capacity() > sizeof(std::string) ? s.capacity() : 0;
}

/// Approximate heap bytes of a node-based hash container
/// (unordered_map / unordered_set): the bucket array plus, per element,
/// the value_type and two pointers of node overhead (next pointer +
/// cached hash, the libstdc++ layout). Value types that own heap of
/// their own (vectors, strings) must be added by the caller.
template <typename HashContainer>
uint64_t HashContainerBytes(const HashContainer& m) {
  return static_cast<uint64_t>(m.bucket_count()) * sizeof(void*) +
         static_cast<uint64_t>(m.size()) *
             (sizeof(typename HashContainer::value_type) + 2 * sizeof(void*));
}

/// One memory report: where the bytes sit and what they amortize over.
struct MemBreakdown {
  uint64_t index_bytes = 0;      // WitnessIndex posting lists + row cache
  uint64_t family_bytes = 0;     // maintained witness set-family
  uint64_t component_bytes = 0;  // per-component records (solutions, labels)
  uint64_t tuples = 0;           // active tuples the index covers
  uint64_t witness_sets = 0;     // distinct endogenous tuple-sets held
  /// View inside family_bytes (not added again by TotalBytes): the
  /// family arena's pool high-water mark (capacity) vs the payload
  /// actually appended. A wide gap means growth reallocations left
  /// slack worth an eviction/rebuild cycle.
  uint64_t arena_reserved_bytes = 0;
  uint64_t arena_live_bytes = 0;

  uint64_t TotalBytes() const {
    return index_bytes + family_bytes + component_bytes;
  }
  double BytesPerTuple() const {
    return tuples == 0 ? 0.0
                       : static_cast<double>(TotalBytes()) /
                             static_cast<double>(tuples);
  }
  double BytesPerWitness() const {
    return witness_sets == 0 ? 0.0
                             : static_cast<double>(TotalBytes()) /
                                   static_cast<double>(witness_sets);
  }
};

/// Publishes a breakdown as the mem.* gauges on the global registry.
/// No-op when metrics are disabled, so callers can invoke it
/// unconditionally after computing a breakdown behind their own
/// MetricsEnabled() gate.
void PublishMemBreakdown(const MemBreakdown& breakdown);

}  // namespace rescq::obs

#endif  // RESCQ_OBS_MEMSTATS_H_
