#ifndef RESCQ_OBS_TRACE_H_
#define RESCQ_OBS_TRACE_H_

// Solve tracing: RAII spans that record Chrome trace_event-format
// complete events ("ph":"X"), so a solve or stream run can be opened in
// chrome://tracing or https://ui.perfetto.dev. Tracing is off by
// default; a Span constructed while tracing is off costs one relaxed
// bool load and records nothing. When tracing is on, the span's
// destructor appends one event under a mutex — span placement is
// coarse (plan / enumerate / reduce / component-solve / epoch-apply /
// adopt, see docs/OBSERVABILITY.md for the taxonomy), so the lock is
// never on a per-node path.
//
// Thread nesting is correct by construction: events carry the real
// wall-clock interval plus a small per-thread id assigned on first use,
// so spans opened inside WorkerPool workers stack under their worker's
// track in the viewer.
//
// `name` and `cat` must be string literals (or otherwise outlive the
// trace buffer): events store the pointers, not copies.

#include <atomic>
#include <cstdint>
#include <string>

namespace rescq::obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
int64_t TraceNowMicros();
void RecordSpan(const char* name, const char* cat, int64_t start_us,
                int64_t end_us);
}  // namespace internal

inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Clears any buffered events, re-bases the trace clock, and enables
/// span recording.
void StartTrace();

/// Stops recording; buffered events survive for TraceJson/WriteTraceJson.
void StopTrace();

/// Number of buffered events (tests and sanity checks).
size_t TraceEventCount();

/// The buffered events as a `{"traceEvents": [...]}` document.
std::string TraceJson();

/// Writes TraceJson() to `path`; false on I/O failure.
bool WriteTraceJson(const std::string& path);

/// RAII span: measures construction-to-destruction and records one
/// complete event on the calling thread's track. Inert (start_us_ < 0)
/// when tracing was off at construction.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "solve")
      : name_(name),
        cat_(cat),
        start_us_(TraceEnabled() ? internal::TraceNowMicros() : -1) {}
  ~Span() {
    if (start_us_ >= 0 && TraceEnabled()) {
      internal::RecordSpan(name_, cat_, start_us_, internal::TraceNowMicros());
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* cat_;
  int64_t start_us_;
};

}  // namespace rescq::obs

#endif  // RESCQ_OBS_TRACE_H_
