#ifndef RESCQ_OBS_METRICS_H_
#define RESCQ_OBS_METRICS_H_

// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms. Instrumented code calls the inline helpers
// (Count / SetGauge / ObserveLatencyMs), whose first instruction is one
// relaxed load of the global enabled flag — when no sink is installed
// (the default) every call inlines to that single test-and-return, so
// the hot paths pay nothing. When a sink is enabled (a --metrics-json
// flag, a report's metrics block, or a test), updates are relaxed
// atomics on registry-owned slots: safe from any thread, never a
// synchronization point. Snapshots serialize to the stable
// `rescq-metrics/v1` JSON schema with keys in sorted order, so
// snapshots diff cleanly run over run.
//
// Metric names are dot-separated lowercase paths ("exact.nodes",
// "mem.bytes_per_tuple"); docs/OBSERVABILITY.md is the catalog.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rescq::obs {

/// Monotone event count. Updates are relaxed atomic adds.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (bytes, ratios, pool sizes).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]
/// (the first bound that fits claims the observation); larger values
/// land in the overflow bucket. Bounds are fixed at registration so
/// snapshots from different runs are bucket-compatible.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t BucketCount(size_t i) const;
  uint64_t OverflowCount() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> overflow_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Owns every metric; registration is mutex-protected and returns a
/// stable reference (map nodes never move), so updates after lookup are
/// lock-free. Standalone registries serve the tests; instrumented code
/// uses the process-wide GlobalRegistry().
class Registry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `upper_bounds` applies on first registration only; later calls with
  /// the same name return the existing histogram unchanged.
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& upper_bounds);

  /// Read-only lookups; nullptr when the name was never registered.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Zeroes every value; registrations (and histogram bounds) survive.
  void Reset();

  /// The snapshot object body ("counters"/"gauges"/"histograms" fields,
  /// no surrounding braces) indented by `indent` spaces — shared by the
  /// standalone document and the report embeddings.
  void AppendSnapshotFields(std::string* out, int indent) const;

  /// Full `rescq-metrics/v1` document.
  std::string SnapshotJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

Registry& GlobalRegistry();

namespace internal {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal

/// True when some sink (CLI flag, report writer, test) asked for
/// metrics. Instrumentation helpers no-op when false.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled);

/// Default latency buckets (milliseconds) shared by every *_ms
/// histogram so traces from different stages line up.
const std::vector<double>& DefaultLatencyBucketsMs();

/// Instrumentation helpers against the global registry. One relaxed
/// bool load when disabled.
inline void Count(const char* name, uint64_t n = 1) {
  if (!MetricsEnabled()) return;
  GlobalRegistry().GetCounter(name).Add(n);
}

inline void SetGauge(const char* name, double value) {
  if (!MetricsEnabled()) return;
  GlobalRegistry().GetGauge(name).Set(value);
}

inline void ObserveLatencyMs(const char* name, double ms) {
  if (!MetricsEnabled()) return;
  GlobalRegistry().GetHistogram(name, DefaultLatencyBucketsMs()).Observe(ms);
}

/// Writes the registry's `rescq-metrics/v1` snapshot; false on I/O
/// failure.
bool WriteMetricsJson(const Registry& registry, const std::string& path);

}  // namespace rescq::obs

#endif  // RESCQ_OBS_METRICS_H_
