#ifndef RESCQ_SERVER_SERVER_H_
#define RESCQ_SERVER_SERVER_H_

#include <string>

#include "resilience/engine.h"
#include "server/line_server.h"
#include "server/protocol.h"
#include "server/session_registry.h"

namespace rescq {

/// How `rescq serve` runs the daemon.
struct ServerOptions {
  /// Numeric IPv4 address to bind.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral one (read it back from
  /// port() after Start — the test and smoke harnesses depend on this).
  int port = 0;
  /// Connection handler threads: how many requests make progress
  /// concurrently. Independent of ServerLimits::solver_threads, which
  /// fans out inside one epoch solve.
  int threads = 4;
  ServerLimits limits;
};

/// The long-lived resilience daemon: the shared LineServer transport
/// (accept thread + handler pool, see server/line_server.h) driving one
/// ProtocolHandler per connection. All sessions live in one registry
/// and all planning goes through one shared engine, so N connections to
/// the same query pay one plan.
///
/// Lifecycle and thread contract are the transport's: Start once;
/// RequestStop/SignalStop from any thread (SignalStop is
/// async-signal-safe); Wait joins; Stop = RequestStop + Wait.
class ResilienceServer {
 public:
  /// `engine` must be thread-safe (ResilienceEngine is) and outlive the
  /// server.
  ResilienceServer(const ServerOptions& options, ResilienceEngine* engine);

  ResilienceServer(const ResilienceServer&) = delete;
  ResilienceServer& operator=(const ResilienceServer&) = delete;

  /// Binds, listens, and spawns the accept thread and handler pool.
  /// False with *error on any socket failure (nothing is left running).
  bool Start(std::string* error) { return transport_.Start(error); }

  /// The bound TCP port (resolves port 0 to the kernel's choice).
  /// Valid after a successful Start.
  int port() const { return transport_.port(); }

  /// The number of sessions currently open (for status lines).
  size_t active_sessions() const { return registry_.size(); }

  /// Begins a graceful stop: stops accepting, unblocks every in-flight
  /// read, and lets the handler loops drain. Returns immediately.
  void RequestStop() { transport_.RequestStop(); }

  /// Async-signal-safe stop request (one pipe write; the accept thread
  /// escalates it to RequestStop).
  void SignalStop() { transport_.SignalStop(); }

  /// Blocks until the server has fully stopped and joins its threads.
  void Wait() { transport_.Wait(); }

  /// RequestStop() then Wait().
  void Stop() { transport_.Stop(); }

 private:
  static LineServerOptions TransportOptions(const ServerOptions& options);

  const ServerOptions options_;
  ResilienceEngine* engine_;
  SessionRegistry registry_;
  LineServer transport_;
};

}  // namespace rescq

#endif  // RESCQ_SERVER_SERVER_H_
