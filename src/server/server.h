#ifndef RESCQ_SERVER_SERVER_H_
#define RESCQ_SERVER_SERVER_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "resilience/engine.h"
#include "server/protocol.h"
#include "server/session_registry.h"
#include "util/parallel.h"

namespace rescq {

/// How `rescq serve` runs the daemon.
struct ServerOptions {
  /// Numeric IPv4 address to bind.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral one (read it back from
  /// port() after Start — the test and smoke harnesses depend on this).
  int port = 0;
  /// Connection handler threads: how many requests make progress
  /// concurrently. Independent of ServerLimits::solver_threads, which
  /// fans out inside one epoch solve.
  int threads = 4;
  ServerLimits limits;
};

/// The long-lived resilience daemon: a listening socket, an accept
/// thread feeding a queue of client fds, and a WorkerPool of handler
/// loops that each drive one connection at a time through a
/// ProtocolHandler. All sessions live in one registry and all planning
/// goes through one shared engine, so N connections to the same query
/// pay one plan.
///
/// Lifecycle: Start() binds and spawns the threads; Wait() blocks until
/// the server stops (a `shutdown` request, Stop(), or a signal relayed
/// through SignalStop()); Stop() = RequestStop() + Wait(). The
/// destructor stops a still-running server.
///
/// Thread contract: Start once from one thread. RequestStop/SignalStop
/// are safe from any thread and idempotent; SignalStop is additionally
/// async-signal-safe (a single pipe write — the CLI's SIGINT/SIGTERM
/// handler calls it, and the accept thread turns it into a full stop).
class ResilienceServer {
 public:
  /// `engine` must be thread-safe (ResilienceEngine is) and outlive the
  /// server.
  ResilienceServer(const ServerOptions& options, ResilienceEngine* engine);
  ~ResilienceServer();

  ResilienceServer(const ResilienceServer&) = delete;
  ResilienceServer& operator=(const ResilienceServer&) = delete;

  /// Binds, listens, and spawns the accept thread and handler pool.
  /// False with *error on any socket failure (nothing is left running).
  bool Start(std::string* error);

  /// The bound TCP port (resolves port 0 to the kernel's choice).
  /// Valid after a successful Start.
  int port() const { return port_; }

  /// The number of sessions currently open (for status lines).
  size_t active_sessions() const { return registry_.size(); }

  /// Begins a graceful stop: stops accepting, unblocks every in-flight
  /// read, and lets the handler loops drain. Returns immediately.
  void RequestStop();

  /// Async-signal-safe stop request (one pipe write; the accept thread
  /// escalates it to RequestStop).
  void SignalStop();

  /// Blocks until the server has fully stopped and joins its threads.
  void Wait();

  /// RequestStop() then Wait().
  void Stop();

 private:
  void AcceptLoop();
  void HandlerLoop();
  void ServeConnection(int fd);

  const ServerOptions options_;
  ResilienceEngine* engine_;
  SessionRegistry registry_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: signals + stop wake the accept poll
  int port_ = 0;

  std::thread accept_thread_;
  std::thread pool_host_;  // runs the WorkerPool's blocking Run as its
                           // last worker, hosting the handler loops
  std::unique_ptr<WorkerPool> pool_;

  std::mutex mu_;
  std::deque<int> pending_fds_;          // accepted, not yet picked up
  std::unordered_set<int> active_fds_;   // being served right now
  bool stop_ = false;
  bool started_ = false;
  bool joined_ = false;
  std::condition_variable queue_cv_;
};

}  // namespace rescq

#endif  // RESCQ_SERVER_SERVER_H_
