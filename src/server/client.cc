#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace rescq {

namespace {

bool SendAll(int fd, const std::string& data, std::string* error) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// "ok explain 3" / "ok sessions 2" → 3 / 2; -1 for single-line replies.
int PayloadLines(const std::string& header) {
  std::vector<std::string> parts = SplitTrimmed(header, ' ');
  if (parts.size() != 3 || parts[0] != "ok") return -1;
  if (parts[1] != "explain" && parts[1] != "sessions") return -1;
  uint64_t n = 0;
  if (!ParseUint64(parts[2], &n) || n > 1000000) return -1;
  return static_cast<int>(n);
}

}  // namespace

LineClient::~LineClient() { Close(); }

void LineClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

bool LineClient::Connect(const std::string& host, int port,
                         std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host '" + host + "' (numeric IPv4 required)";
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "connect " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    Close();
    return false;
  }
  return true;
}

bool LineClient::ReadLine(std::string* line, std::string* error) {
  char chunk[4096];
  size_t newline;
  while ((newline = buffer_.find('\n')) == std::string::npos) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      *error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (n == 0) {
      *error = "server closed the connection";
      return false;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  *line = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);
  return true;
}

bool LineClient::Request(const std::string& line, std::string* reply,
                         std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  if (!SendAll(fd_, line + "\n", error)) {
    Close();
    return false;
  }
  std::string header;
  if (!ReadLine(&header, error)) {
    Close();
    return false;
  }
  *reply = header;
  int payload = PayloadLines(header);
  for (int i = 0; i < payload; ++i) {
    std::string extra;
    if (!ReadLine(&extra, error)) {
      Close();
      return false;
    }
    *reply += "\n" + extra;
  }
  return true;
}

}  // namespace rescq
