#include "server/client.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/string_util.h"

namespace rescq {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool SendAll(int fd, const std::string& data, std::string* error) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// "ok explain 3" / "ok sessions 2" → 3 / 2; -1 for single-line replies.
int PayloadLines(const std::string& header) {
  std::vector<std::string> parts = SplitTrimmed(header, ' ');
  if (parts.size() != 3 || parts[0] != "ok") return -1;
  if (parts[1] != "explain" && parts[1] != "sessions") return -1;
  uint64_t n = 0;
  if (!ParseUint64(parts[2], &n) || n > 1000000) return -1;
  return static_cast<int>(n);
}

bool SetNonBlocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  if (on) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  return ::fcntl(fd, F_SETFL, flags) == 0;
}

/// connect() one address under a deadline: non-blocking connect, poll
/// for writability, read back SO_ERROR, then restore blocking mode.
/// timeout_ms 0 = plain blocking connect.
bool ConnectWithDeadline(int fd, const sockaddr* addr, socklen_t addrlen,
                         int timeout_ms, std::string* error) {
  if (timeout_ms <= 0) {
    if (::connect(fd, addr, addrlen) != 0) {
      *error = std::strerror(errno);
      return false;
    }
    return true;
  }
  if (!SetNonBlocking(fd, true)) {
    *error = std::string("fcntl: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd, addr, addrlen) != 0) {
    if (errno != EINPROGRESS) {
      *error = std::strerror(errno);
      return false;
    }
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int64_t deadline = NowMs() + timeout_ms;
    for (;;) {
      int64_t remaining = deadline - NowMs();
      if (remaining <= 0) {
        *error = "timeout: connect took longer than " +
                 std::to_string(timeout_ms) + "ms";
        return false;
      }
      int r = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (r < 0 && errno == EINTR) continue;
      if (r < 0) {
        *error = std::string("poll: ") + std::strerror(errno);
        return false;
      }
      if (r == 0) {
        *error = "timeout: connect took longer than " +
                 std::to_string(timeout_ms) + "ms";
        return false;
      }
      break;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      *error = std::strerror(so_error != 0 ? so_error : errno);
      return false;
    }
  }
  if (!SetNonBlocking(fd, false)) {
    *error = std::string("fcntl: ") + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace

LineClient::~LineClient() { Close(); }

void LineClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

bool LineClient::Connect(const std::string& host, int port,
                         std::string* error) {
  Close();
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &result);
  if (rc != 0) {
    *error = "resolve " + host + ": " + ::gai_strerror(rc);
    return false;
  }
  std::string last_error = "no addresses";
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd_ = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd_ < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    std::string attempt_error;
    if (ConnectWithDeadline(fd_, ai->ai_addr, ai->ai_addrlen,
                            connect_timeout_ms_, &attempt_error)) {
      ::freeaddrinfo(result);
      return true;
    }
    last_error = attempt_error;
    ::close(fd_);
    fd_ = -1;
  }
  ::freeaddrinfo(result);
  *error =
      "connect " + host + ":" + std::to_string(port) + ": " + last_error;
  return false;
}

bool LineClient::ReadLine(std::string* line, std::string* error) {
  char chunk[4096];
  size_t newline;
  const int64_t deadline =
      io_timeout_ms_ > 0 ? NowMs() + io_timeout_ms_ : 0;
  while ((newline = buffer_.find('\n')) == std::string::npos) {
    if (buffer_.size() > kMaxReplyLineBytes) {
      *error = "reply line over " + std::to_string(kMaxReplyLineBytes) +
               " bytes";
      return false;
    }
    if (deadline != 0) {
      pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      int64_t remaining = deadline - NowMs();
      int r = remaining <= 0
                  ? 0
                  : ::poll(&pfd, 1, static_cast<int>(remaining));
      if (r < 0 && errno == EINTR) continue;
      if (r < 0) {
        *error = std::string("poll: ") + std::strerror(errno);
        return false;
      }
      if (r == 0) {
        *error = "timeout: no reply within " +
                 std::to_string(io_timeout_ms_) + "ms";
        return false;
      }
    }
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      *error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (n == 0) {
      *error = "server closed the connection";
      return false;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  *line = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);
  return true;
}

bool LineClient::Request(const std::string& line, std::string* reply,
                         std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  if (!SendAll(fd_, line + "\n", error)) {
    Close();
    return false;
  }
  std::string header;
  if (!ReadLine(&header, error)) {
    Close();
    return false;
  }
  *reply = header;
  int payload = PayloadLines(header);
  for (int i = 0; i < payload; ++i) {
    std::string extra;
    if (!ReadLine(&extra, error)) {
      Close();
      return false;
    }
    *reply += "\n" + extra;
  }
  return true;
}

}  // namespace rescq
