#include "server/session_registry.h"

#include <algorithm>

namespace rescq {

namespace {

/// entries_ is kept sorted by name so List() is deterministic and
/// lookup is a binary search — session counts are small, but the
/// `sessions` verb and the golden transcript want a stable order.
std::vector<std::shared_ptr<SessionEntry>>::const_iterator LowerBound(
    const std::vector<std::shared_ptr<SessionEntry>>& entries,
    const std::string& name) {
  return std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const std::shared_ptr<SessionEntry>& e, const std::string& n) {
        return e->name < n;
      });
}

}  // namespace

bool SessionRegistry::Open(const std::string& name,
                           std::shared_ptr<SessionEntry>* entry,
                           std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = LowerBound(entries_, name);
  if (it != entries_.end() && (*it)->name == name) {
    *error = "session '" + name + "' already exists";
    return false;
  }
  if (max_sessions_ != 0 && entries_.size() >= max_sessions_) {
    *error = "session limit reached (max_sessions=" +
             std::to_string(max_sessions_) + ")";
    return false;
  }
  *entry = std::make_shared<SessionEntry>(name);
  entries_.insert(it, *entry);
  return true;
}

std::shared_ptr<SessionEntry> SessionRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = LowerBound(entries_, name);
  if (it == entries_.end() || (*it)->name != name) return nullptr;
  return *it;
}

bool SessionRegistry::Close(const std::string& name, std::string* error) {
  std::shared_ptr<SessionEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = LowerBound(entries_, name);
    if (it == entries_.end() || (*it)->name != name) {
      *error = "no session named '" + name + "'";
      return false;
    }
    entry = *it;
    entries_.erase(it);
  }
  // Mark outside the registry mutex: the exclusive lock waits for
  // in-flight requests on this session without stalling every other
  // registry operation.
  std::unique_lock<std::shared_mutex> lock(entry->mu);
  entry->closed = true;
  entry->session.reset();
  return true;
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::shared_ptr<SessionEntry>> SessionRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

}  // namespace rescq
