#include "server/session_registry.h"

#include <algorithm>
#include <chrono>

namespace rescq {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

/// entries_ is kept sorted by name so List() is deterministic and
/// lookup is a binary search — session counts are small, but the
/// `sessions` verb and the golden transcript want a stable order.
std::vector<std::shared_ptr<SessionEntry>>::const_iterator LowerBound(
    const std::vector<std::shared_ptr<SessionEntry>>& entries,
    const std::string& name) {
  return std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const std::shared_ptr<SessionEntry>& e, const std::string& n) {
        return e->name < n;
      });
}

}  // namespace

bool SessionRegistry::Open(const std::string& name,
                           std::shared_ptr<SessionEntry>* entry,
                           std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = LowerBound(entries_, name);
  if (it != entries_.end() && (*it)->name == name) {
    *error = "session '" + name + "' already exists";
    return false;
  }
  if (max_sessions_ != 0 && entries_.size() >= max_sessions_) {
    *error = "session limit reached (max_sessions=" +
             std::to_string(max_sessions_) + ")";
    return false;
  }
  *entry = std::make_shared<SessionEntry>(name);
  entries_.insert(it, *entry);
  return true;
}

std::shared_ptr<SessionEntry> SessionRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = LowerBound(entries_, name);
  if (it == entries_.end() || (*it)->name != name) return nullptr;
  return *it;
}

bool SessionRegistry::Close(const std::string& name, std::string* error) {
  std::shared_ptr<SessionEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = LowerBound(entries_, name);
    if (it == entries_.end() || (*it)->name != name) {
      *error = "no session named '" + name + "'";
      return false;
    }
    entry = *it;
    entries_.erase(it);
  }
  // Mark outside the registry mutex: the exclusive lock waits for
  // in-flight requests on this session without stalling every other
  // registry operation.
  std::unique_lock<std::shared_mutex> lock(entry->mu);
  entry->closed = true;
  entry->session.reset();
  return true;
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::shared_ptr<SessionEntry>> SessionRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

namespace {

/// Drops one session's cold state if it is (still) evictable. The
/// try_lock doubles as the hotness test: a session mid-request holds
/// its own lock, and a busy session is not cold.
bool TryEvictEntry(const std::shared_ptr<SessionEntry>& e) {
  std::unique_lock<std::shared_mutex> lock(e->mu, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  if (e->closed || !e->live() || !e->session->index_resident()) return false;
  e->session->EvictColdState();
  e->resident_bytes.store(e->session->ApproxMemory().TotalBytes(),
                          std::memory_order_relaxed);
  return true;
}

}  // namespace

size_t SessionRegistry::EvictColdSessions(int64_t now_ms, int64_t idle_ms,
                                          uint64_t max_resident_bytes) {
  std::vector<std::shared_ptr<SessionEntry>> snapshot = List();
  size_t evicted = 0;

  // Pass 1: idle eviction, regardless of the byte cap.
  if (idle_ms > 0) {
    for (const auto& e : snapshot) {
      int64_t touched = e->last_touch_ms.load(std::memory_order_relaxed);
      if (now_ms - touched < idle_ms) continue;
      if (TryEvictEntry(e)) ++evicted;
    }
  }

  // Pass 2: byte cap — evict coldest-first until back under.
  if (max_resident_bytes > 0) {
    std::stable_sort(snapshot.begin(), snapshot.end(),
                     [](const std::shared_ptr<SessionEntry>& a,
                        const std::shared_ptr<SessionEntry>& b) {
                       return a->last_touch_ms.load(std::memory_order_relaxed) <
                              b->last_touch_ms.load(std::memory_order_relaxed);
                     });
    uint64_t resident = 0;
    for (const auto& e : snapshot)
      resident += e->resident_bytes.load(std::memory_order_relaxed);
    for (const auto& e : snapshot) {
      if (resident <= max_resident_bytes) break;
      uint64_t before = e->resident_bytes.load(std::memory_order_relaxed);
      if (!TryEvictEntry(e)) continue;
      ++evicted;
      uint64_t after = e->resident_bytes.load(std::memory_order_relaxed);
      resident -= before > after ? before - after : 0;
    }
  }

  return evicted;
}

}  // namespace rescq
