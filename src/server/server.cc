#include "server/server.h"

#include <memory>

namespace rescq {

LineServerOptions ResilienceServer::TransportOptions(
    const ServerOptions& options) {
  LineServerOptions transport;
  transport.host = options.host;
  transport.port = options.port;
  transport.threads = options.threads;
  transport.connections_metric = "server.connections";
  return transport;
}

ResilienceServer::ResilienceServer(const ServerOptions& options,
                                   ResilienceEngine* engine)
    : options_(options),
      engine_(engine),
      registry_(options.limits.max_sessions),
      transport_(TransportOptions(options), [this] {
        return std::make_unique<ProtocolHandler>(&registry_, engine_,
                                                 &options_.limits);
      }) {}

}  // namespace rescq
