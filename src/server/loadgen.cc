#include "server/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "cq/parser.h"
#include "db/delta.h"
#include "db/tuple_io.h"
#include "resilience/exact_solver.h"
#include "server/client.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "workload/churn.h"
#include "workload/report.h"
#include "workload/scenario.h"

namespace rescq {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// What one connection's worker measured and concluded.
struct ConnResult {
  std::vector<double> latencies_ms;
  std::vector<double> epoch_latencies_ms;
  uint64_t requests = 0;
  uint64_t err_replies = 0;
  uint64_t epochs_applied = 0;
  uint64_t oracle_checks = 0;
  uint64_t oracle_mismatches = 0;
  std::string error;  // first fatal problem; empty = clean run
};

std::string FormatUpdateLine(const Update& u) {
  std::string line = u.kind == UpdateKind::kInsert ? "+ " : "- ";
  line += u.relation + "(" + Join(u.constants, ", ") + ")";
  return line;
}

/// The base facts as push-able lines, via the canonical writer.
std::vector<std::string> FactLines(const Database& db) {
  std::ostringstream text;
  WriteTuples(db, text);
  std::vector<std::string> lines;
  for (const std::string& line : Split(text.str(), '\n')) {
    std::string_view t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    lines.push_back(std::string(t));
  }
  return lines;
}

/// One timed request; counts it, records its latency, and treats a
/// transport failure as fatal for the connection.
bool TimedRequest(LineClient* client, const std::string& line,
                  ConnResult* result, std::string* reply) {
  Clock::time_point start = Clock::now();
  std::string error;
  if (!client->Request(line, reply, &error)) {
    result->error = "request '" + line + "': " + error;
    return false;
  }
  result->latencies_ms.push_back(MsSince(start));
  ++result->requests;
  if (StartsWith(*reply, "err ")) ++result->err_replies;
  return true;
}

void RunConnection(const LoadgenOptions& options, size_t index,
                   ConnResult* result) {
  const Scenario* scenario = FindScenario(options.scenario);
  if (scenario == nullptr) {
    result->error = "unknown scenario '" + options.scenario + "'";
    return;
  }
  ScenarioParams sparams;
  sparams.size = options.size;
  sparams.density = options.density;
  sparams.seed = options.seed + index;
  Database base = scenario->generate(sparams);

  std::string query_text =
      options.query.empty() ? scenario->query : options.query;
  ParseResult parsed = ParseQuery(query_text);
  if (!parsed.ok) {
    result->error = "query: " + parsed.error;
    return;
  }

  ChurnParams cparams;
  cparams.epochs = options.epochs;
  cparams.rate = options.rate;
  cparams.seed = options.seed * 1000003 + index;
  UpdateLog log = GenerateChurn(base, options.churn, cparams);

  LineClient client;
  client.set_timeout_ms(options.timeout_ms);
  std::string error;
  if (!client.Connect(options.host, options.port, &error)) {
    result->error = error;
    return;
  }
  std::string session =
      options.session_prefix + "-" + std::to_string(index);
  std::string reply;
  if (!TimedRequest(&client, "open " + session + " " + query_text, result,
                    &reply)) {
    return;
  }
  if (!StartsWith(reply, "ok ")) {
    result->error = "open rejected: " + reply;
    return;
  }
  for (const std::string& fact : FactLines(base)) {
    if (!TimedRequest(&client, "push " + fact, result, &reply)) return;
  }
  std::string begin = "begin";
  if (options.witness_limit != 0) {
    begin += StrFormat(" witness_limit=%llu",
                       static_cast<unsigned long long>(options.witness_limit));
  }
  if (options.node_budget != 0) {
    begin += StrFormat(" node_budget=%llu",
                       static_cast<unsigned long long>(options.node_budget));
  }
  if (!TimedRequest(&client, begin, result, &reply)) return;
  if (!StartsWith(reply, "ok begin ")) {
    result->error = "begin rejected: " + reply;
    return;
  }

  Database mirror = base;  // the oracle's from-scratch view
  for (const Epoch& epoch : log.epochs) {
    for (const Update& update : epoch.updates) {
      if (!TimedRequest(&client, FormatUpdateLine(update), result, &reply)) {
        return;
      }
    }
    Clock::time_point epoch_start = Clock::now();
    if (!TimedRequest(&client, "epoch", result, &reply)) return;
    result->epoch_latencies_ms.push_back(MsSince(epoch_start));
    if (!StartsWith(reply, "ok epoch ")) {
      result->error = "epoch rejected: " + reply;
      return;
    }
    ++result->epochs_applied;

    std::string res_reply;
    if (!TimedRequest(&client, "resilience", result, &res_reply)) return;
    if (!TimedRequest(&client, "stats", result, &reply)) return;

    if (options.check_oracle) {
      ApplyEpoch(epoch, &mirror);
      // Only a proven answer is comparable; an exhausted node budget
      // legitimately leaves an upper bound.
      if (res_reply == "ok resilience unbreakable" ||
          (StartsWith(res_reply, "ok resilience ") &&
           res_reply.find("unproven") == std::string::npos)) {
        ResilienceResult oracle =
            ComputeResilienceExact(parsed.query, mirror);
        ++result->oracle_checks;
        std::string expect =
            oracle.unbreakable
                ? "ok resilience unbreakable"
                : StrFormat("ok resilience %d", oracle.resilience);
        if (res_reply != expect) {
          ++result->oracle_mismatches;
          if (result->error.empty()) {
            result->error = "oracle mismatch at session " + session +
                            " epoch " + std::to_string(result->epochs_applied) +
                            ": served '" + res_reply + "', oracle '" + expect +
                            "'";
          }
        }
      }
    }
  }
  TimedRequest(&client, "close", result, &reply);
  TimedRequest(&client, "quit", result, &reply);
}

LatencyStats Summarize(std::vector<double>* samples) {
  LatencyStats stats;
  stats.count = samples->size();
  if (samples->empty()) return stats;
  std::sort(samples->begin(), samples->end());
  double sum = 0;
  for (double v : *samples) sum += v;
  stats.mean_ms = sum / static_cast<double>(samples->size());
  auto rank = [&](double p) {
    size_t n = samples->size();
    size_t idx = static_cast<size_t>(std::ceil(p * static_cast<double>(n)));
    if (idx > 0) --idx;
    if (idx >= n) idx = n - 1;
    return (*samples)[idx];
  };
  stats.p50_ms = rank(0.50);
  stats.p99_ms = rank(0.99);
  stats.p999_ms = rank(0.999);
  stats.max_ms = samples->back();
  return stats;
}

void WriteLatencyJson(const LatencyStats& s, std::ostream& out) {
  out << "{\"count\": " << s.count << ", \"mean_ms\": " << s.mean_ms
      << ", \"p50_ms\": " << s.p50_ms << ", \"p99_ms\": " << s.p99_ms
      << ", \"p999_ms\": " << s.p999_ms << ", \"max_ms\": " << s.max_ms
      << "}";
}

}  // namespace

LoadgenReport RunLoadgen(const LoadgenOptions& options) {
  LoadgenReport report;
  report.options = options;
  if (!IsChurnKind(options.churn)) {
    report.error = "unknown churn kind '" + options.churn + "'";
    return report;
  }
  if (options.connections < 1) {
    report.error = "need at least one connection";
    return report;
  }

  size_t n = static_cast<size_t>(options.connections);
  std::vector<ConnResult> results(n);
  Clock::time_point start = Clock::now();
  // One worker per connection — loadgen's whole point is concurrent
  // client pressure, so every connection runs on its own thread.
  ParallelFor(options.connections, n, [&](size_t i) {
    RunConnection(options, i, &results[i]);
  });
  report.wall_ms = MsSince(start);

  std::vector<double> all, epochs;
  for (ConnResult& r : results) {
    report.requests += r.requests;
    report.err_replies += r.err_replies;
    report.epochs_applied += r.epochs_applied;
    report.oracle_checks += r.oracle_checks;
    report.oracle_mismatches += r.oracle_mismatches;
    all.insert(all.end(), r.latencies_ms.begin(), r.latencies_ms.end());
    epochs.insert(epochs.end(), r.epoch_latencies_ms.begin(),
                  r.epoch_latencies_ms.end());
    if (report.error.empty() && !r.error.empty()) report.error = r.error;
  }
  report.latency = Summarize(&all);
  report.epoch_latency = Summarize(&epochs);
  if (report.wall_ms > 0) {
    report.requests_per_sec =
        static_cast<double>(report.requests) * 1000.0 / report.wall_ms;
  }
  return report;
}

void PrintLoadgenTable(const LoadgenReport& report, std::FILE* out) {
  std::fprintf(out,
               "loadgen: %d connections, scenario=%s churn=%s size=%d "
               "epochs=%d seed=%llu\n",
               report.options.connections, report.options.scenario.c_str(),
               report.options.churn.c_str(), report.options.size,
               report.options.epochs,
               static_cast<unsigned long long>(report.options.seed));
  std::fprintf(out,
               "  %llu requests in %.1f ms  (%.1f req/s), %llu err replies\n",
               static_cast<unsigned long long>(report.requests),
               report.wall_ms, report.requests_per_sec,
               static_cast<unsigned long long>(report.err_replies));
  std::fprintf(out, "  %-8s %8s %9s %9s %9s %9s %9s\n", "class", "count",
               "mean_ms", "p50_ms", "p99_ms", "p999_ms", "max_ms");
  const LatencyStats* rows[2] = {&report.latency, &report.epoch_latency};
  const char* names[2] = {"all", "epoch"};
  for (int i = 0; i < 2; ++i) {
    std::fprintf(out, "  %-8s %8llu %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                 names[i], static_cast<unsigned long long>(rows[i]->count),
                 rows[i]->mean_ms, rows[i]->p50_ms, rows[i]->p99_ms,
                 rows[i]->p999_ms, rows[i]->max_ms);
  }
  if (report.options.check_oracle) {
    std::fprintf(out, "  oracle: %llu checks, %llu mismatches\n",
                 static_cast<unsigned long long>(report.oracle_checks),
                 static_cast<unsigned long long>(report.oracle_mismatches));
  }
  if (!report.error.empty()) {
    std::fprintf(out, "  ERROR: %s\n", report.error.c_str());
  }
}

void WriteLoadgenCsv(const LoadgenReport& report, std::ostream& out) {
  out << "class,count,mean_ms,p50_ms,p99_ms,p999_ms,max_ms,"
         "requests_per_sec\n";
  const LatencyStats* rows[2] = {&report.latency, &report.epoch_latency};
  const char* names[2] = {"all", "epoch"};
  for (int i = 0; i < 2; ++i) {
    out << names[i] << "," << rows[i]->count << "," << rows[i]->mean_ms << ","
        << rows[i]->p50_ms << "," << rows[i]->p99_ms << ","
        << rows[i]->p999_ms << "," << rows[i]->max_ms << ",";
    if (i == 0) out << report.requests_per_sec;
    out << "\n";
  }
}

void WriteLoadgenJson(const LoadgenReport& report, std::ostream& out) {
  const LoadgenOptions& o = report.options;
  out << "{\n  \"schema\": \"rescq-loadgen-report/v1\",\n";
  out << "  \"options\": {\"host\": \"" << JsonEscape(o.host)
      << "\", \"port\": " << o.port << ", \"connections\": " << o.connections
      << ", \"scenario\": \"" << JsonEscape(o.scenario) << "\", \"query\": \""
      << JsonEscape(o.query) << "\", \"size\": " << o.size
      << ", \"density\": " << o.density << ", \"churn\": \""
      << JsonEscape(o.churn) << "\", \"epochs\": " << o.epochs
      << ", \"rate\": " << o.rate << ", \"seed\": " << o.seed
      << ", \"check_oracle\": " << BoolName(o.check_oracle)
      << ", \"witness_limit\": " << o.witness_limit
      << ", \"node_budget\": " << o.node_budget << "},\n";
  out << "  \"summary\": {\"requests\": " << report.requests
      << ", \"err_replies\": " << report.err_replies
      << ", \"epochs_applied\": " << report.epochs_applied
      << ", \"oracle_checks\": " << report.oracle_checks
      << ", \"oracle_mismatches\": " << report.oracle_mismatches
      << ", \"wall_ms\": " << report.wall_ms
      << ", \"requests_per_sec\": " << report.requests_per_sec
      << ", \"error\": \"" << JsonEscape(report.error) << "\"},\n";
  out << "  \"latency\": {\"all\": ";
  WriteLatencyJson(report.latency, out);
  out << ", \"epoch\": ";
  WriteLatencyJson(report.epoch_latency, out);
  out << "}\n}\n";
}

bool SaveLoadgenCsv(const LoadgenReport& report, const std::string& path,
                    std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot create " + path;
    return false;
  }
  WriteLoadgenCsv(report, out);
  return true;
}

bool SaveLoadgenJson(const LoadgenReport& report, const std::string& path,
                     std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot create " + path;
    return false;
  }
  WriteLoadgenJson(report, out);
  return true;
}

}  // namespace rescq
