#include "server/router.h"

#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "server/session_registry.h"
#include "util/string_util.h"

namespace rescq {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Splits "verb rest-of-line" (rest may be empty).
void SplitVerb(std::string_view line, std::string_view* verb,
               std::string_view* rest) {
  size_t space = line.find_first_of(" \t");
  if (space == std::string_view::npos) {
    *verb = line;
    *rest = std::string_view();
    return;
  }
  *verb = line.substr(0, space);
  *rest = Trim(line.substr(space + 1));
}

std::string RouterErr(const char* code, const std::string& message) {
  obs::Count("shard.errors");
  return std::string("err ") + code + " " + message + "\n";
}

/// One summable field of the server-scope `stats` line.
bool ParseStatsField(const std::vector<std::string>& tokens,
                     const std::string& key, long long* out) {
  for (const std::string& token : tokens) {
    if (token.size() > key.size() + 1 && token.compare(0, key.size(), key) == 0 &&
        token[key.size()] == '=') {
      uint64_t v = 0;
      if (!ParseUint64(token.substr(key.size() + 1), &v)) return false;
      *out = static_cast<long long>(v);
      return true;
    }
  }
  return false;
}

}  // namespace

bool ParseShardSpec(const std::string& text, ShardSpec* spec,
                    std::string* error) {
  size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == text.size()) {
    *error = "shard spec '" + text + "' is not host:port";
    return false;
  }
  int port = 0;
  if (!ParsePositiveInt(text.substr(colon + 1), &port) || port > 65535) {
    *error = "shard spec '" + text + "' has a bad port";
    return false;
  }
  spec->host = text.substr(0, colon);
  spec->port = port;
  return true;
}

/// One router connection: the per-connection protocol state (current
/// session, which backend connection has it selected) plus a lazy
/// LineClient per shard, so forwarded lines replay verbatim on the
/// owning shard's connection.
class RouterConnection : public LineConnectionHandler {
 public:
  explicit RouterConnection(ShardRouter* router) : router_(router) {
    channels_.resize(router_->shards_.size());
    channel_session_.resize(router_->shards_.size());
  }

  LineResult Handle(std::string_view raw) override;

 private:
  using ShardState = ShardRouter::ShardState;

  const RouterOptions& opts() const { return router_->options_; }
  ShardState& shard(size_t i) { return *router_->shards_[i]; }
  size_t shard_count() const { return router_->shards_.size(); }

  bool ShardDown(size_t i) {
    return shard(i).down_until_ms.load(std::memory_order_relaxed) >
           SteadyNowMs();
  }
  void MarkDown(size_t i) {
    shard(i).down_until_ms.store(SteadyNowMs() + opts().down_cooldown_ms,
                                 std::memory_order_relaxed);
  }
  void MarkUp(size_t i) {
    shard(i).down_until_ms.store(0, std::memory_order_relaxed);
  }

  std::string Unavailable(size_t i, const std::string& detail) {
    obs::Count("shard.failovers");
    return RouterErr("shard_unavailable",
                     "shard " + std::to_string(i) + " (" +
                         shard(i).spec.Label() + "): " + detail);
  }

  /// Connects `client` to shard i under the router's deadline/retry
  /// policy. False with *detail after the last attempt fails.
  bool ConnectWithRetries(size_t i, LineClient* client, std::string* detail);

  /// After a reconnect, re-select the connection's current session on
  /// its owning shard (a fresh backend connection has none selected).
  void RestoreSelection(size_t i, LineClient* client);

  /// Forwards one line to shard i on this connection's channel.
  /// Idempotent requests survive one mid-flight reconnect; mutating
  /// ones fail over to `err shard_unavailable` rather than risking a
  /// double-apply. Always returns a full '\n'-terminated reply.
  std::string Forward(size_t i, const std::string& line, bool idempotent);

  /// Scatter-gather over every shard's session-less control channel.
  std::string ScatterStats();
  std::string ScatterSessions();
  void BroadcastShutdown();

  /// One request on shard i's shared control channel (session-less, so
  /// `stats` comes back server-scope). False if the shard is down.
  bool ControlRequest(size_t i, const std::string& line, std::string* reply);

  ShardRouter* router_;
  std::vector<std::unique_ptr<LineClient>> channels_;
  std::vector<std::string> channel_session_;  // selected on each backend conn
  std::string current_session_;
  int current_shard_ = -1;
};

bool RouterConnection::ConnectWithRetries(size_t i, LineClient* client,
                                          std::string* detail) {
  const RouterOptions& o = opts();
  client->set_connect_timeout_ms(o.connect_timeout_ms);
  client->set_io_timeout_ms(o.request_timeout_ms);
  int attempts = 1 + (o.retries < 0 ? 0 : o.retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      obs::Count("shard.retries");
      std::this_thread::sleep_for(
          std::chrono::milliseconds(o.backoff_ms * attempt));
    }
    if (client->Connect(shard(i).spec.host, shard(i).spec.port, detail)) {
      MarkUp(i);
      return true;
    }
  }
  MarkDown(i);
  return false;
}

void RouterConnection::RestoreSelection(size_t i, LineClient* client) {
  channel_session_[i].clear();
  if (current_shard_ != static_cast<int>(i) || current_session_.empty()) {
    return;
  }
  std::string reply, error;
  if (client->Request("use " + current_session_, &reply, &error) &&
      StartsWith(reply, "ok ")) {
    channel_session_[i] = current_session_;
  }
  // An err reply (the shard restarted and lost the session) is left
  // alone: the forwarded request then earns an honest `err no-session`.
}

std::string RouterConnection::Forward(size_t i, const std::string& line,
                                      bool idempotent) {
  if (ShardDown(i)) {
    return Unavailable(i, "marked down, retrying after cooldown");
  }
  if (channels_[i] == nullptr) channels_[i] = std::make_unique<LineClient>();
  LineClient* client = channels_[i].get();
  std::string detail;
  if (!client->connected()) {
    if (!ConnectWithRetries(i, client, &detail)) {
      return Unavailable(i, detail);
    }
    RestoreSelection(i, client);
  }
  std::string reply, error;
  if (!client->Request(line, &reply, &error)) {
    // The channel broke mid-request (Request closed it). Only an
    // idempotent read may be replayed; a mutating verb might have been
    // applied before the connection died.
    if (!idempotent) {
      MarkDown(i);
      return Unavailable(i, error);
    }
    if (!ConnectWithRetries(i, client, &detail)) {
      return Unavailable(i, detail);
    }
    RestoreSelection(i, client);
    if (!client->Request(line, &reply, &error)) {
      MarkDown(i);
      return Unavailable(i, error);
    }
  }
  MarkUp(i);
  obs::Count("shard.forwarded");
  obs::Count(("shard.forwarded." + std::to_string(i)).c_str());
  return reply + "\n";
}

bool RouterConnection::ControlRequest(size_t i, const std::string& line,
                                      std::string* reply) {
  if (ShardDown(i)) return false;
  ShardState& s = shard(i);
  std::lock_guard<std::mutex> lock(s.control_mu);
  std::string detail, error;
  if (!s.control.connected() &&
      !ConnectWithRetries(i, &s.control, &detail)) {
    return false;
  }
  if (s.control.Request(line, reply, &error)) {
    MarkUp(i);
    return true;
  }
  // Scatter verbs are reads: one reconnect + resend.
  if (!ConnectWithRetries(i, &s.control, &detail)) return false;
  if (!s.control.Request(line, reply, &error)) {
    MarkDown(i);
    return false;
  }
  MarkUp(i);
  return true;
}

std::string RouterConnection::ScatterStats() {
  Clock::time_point start = Clock::now();
  long long sessions = 0, live = 0, staging = 0, tuples = 0, sets = 0;
  size_t up = 0;
  for (size_t i = 0; i < shard_count(); ++i) {
    std::string reply;
    if (!ControlRequest(i, "stats", &reply)) continue;
    if (!StartsWith(reply, "ok stats scope=server ")) continue;
    std::vector<std::string> tokens = SplitTrimmed(reply, ' ');
    long long v = 0;
    if (ParseStatsField(tokens, "sessions", &v)) sessions += v;
    if (ParseStatsField(tokens, "live", &v)) live += v;
    if (ParseStatsField(tokens, "staging", &v)) staging += v;
    if (ParseStatsField(tokens, "tuples", &v)) tuples += v;
    if (ParseStatsField(tokens, "sets", &v)) sets += v;
    ++up;
  }
  obs::ObserveLatencyMs("shard.scatter_ms", MsSince(start));
  if (up == 0) {
    obs::Count("shard.failovers");
    return RouterErr("shard_unavailable", "no shard reachable for stats");
  }
  return StrFormat(
      "ok stats scope=router shards=%zu up=%zu sessions=%lld live=%lld "
      "staging=%lld tuples=%lld sets=%lld\n",
      shard_count(), up, sessions, live, staging, tuples, sets);
}

std::string RouterConnection::ScatterSessions() {
  Clock::time_point start = Clock::now();
  std::vector<std::string> lines;
  size_t up = 0;
  for (size_t i = 0; i < shard_count(); ++i) {
    std::string reply;
    if (!ControlRequest(i, "sessions", &reply)) continue;
    std::vector<std::string> parts = Split(reply, '\n');
    if (parts.empty() || !StartsWith(parts[0], "ok sessions ")) continue;
    lines.insert(lines.end(), parts.begin() + 1, parts.end());
    ++up;
  }
  obs::ObserveLatencyMs("shard.scatter_ms", MsSince(start));
  if (up == 0) {
    obs::Count("shard.failovers");
    return RouterErr("shard_unavailable", "no shard reachable for sessions");
  }
  // Shards hold disjoint name sets; a global sort restores the
  // deterministic name order each shard's own listing has.
  std::sort(lines.begin(), lines.end());
  std::string reply = StrFormat("ok sessions %zu\n", lines.size());
  for (const std::string& l : lines) reply += l + "\n";
  return reply;
}

void RouterConnection::BroadcastShutdown() {
  for (size_t i = 0; i < shard_count(); ++i) {
    std::string reply;
    ControlRequest(i, "shutdown", &reply);  // best effort
  }
}

LineResult RouterConnection::Handle(std::string_view raw) {
  LineResult result;
  std::string_view line = raw;
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  line = Trim(line);
  if (line.empty() || line[0] == '#') return result;  // no reply

  std::string_view verb, rest;
  if (line[0] == '+' || line[0] == '-') {
    verb = line.substr(0, 1);
  } else {
    SplitVerb(line, &verb, &rest);
  }
  obs::Count("shard.requests");
  const std::string request(line);

  if (verb == "ping") {
    result.response = "ok pong\n";
  } else if (verb == "quit") {
    result.response = "ok bye\n";
    result.close_connection = true;
  } else if (verb == "shutdown") {
    if (!opts().allow_shutdown) {
      result.response = RouterErr(
          "shutdown-disabled", "this router does not honor the shutdown verb");
    } else {
      BroadcastShutdown();
      result.response = "ok shutdown\n";
      result.close_connection = true;
      result.stop_server = true;
    }
  } else if (verb == "open" || verb == "use") {
    std::string_view name, tail;
    SplitVerb(rest, &name, &tail);
    if (name.empty() || name.size() > 128) {
      result.response = RouterErr(
          "bad-request", "session names are 1-128 characters with no whitespace");
      return result;
    }
    size_t owner = router_->map_.OwnerOf(name);
    result.response = Forward(owner, request, /*idempotent=*/verb == "use");
    if (StartsWith(result.response, "ok ")) {
      current_session_ = std::string(name);
      current_shard_ = static_cast<int>(owner);
      channel_session_[owner] = current_session_;
    }
  } else if (verb == "close") {
    std::string name = rest.empty() ? current_session_ : std::string(rest);
    if (name.empty()) {
      result.response = RouterErr(
          "no-session", "no session selected (open or use one first)");
      return result;
    }
    size_t owner = router_->map_.OwnerOf(name);
    result.response = Forward(owner, request, /*idempotent=*/false);
    if (StartsWith(result.response, "ok ")) {
      if (name == current_session_) {
        current_session_.clear();
        current_shard_ = -1;
      }
      if (channel_session_[owner] == name) channel_session_[owner].clear();
    }
  } else if (verb == "stats") {
    if (current_shard_ >= 0) {
      result.response =
          Forward(static_cast<size_t>(current_shard_), request, true);
    } else {
      result.response = ScatterStats();
    }
  } else if (verb == "sessions") {
    result.response = ScatterSessions();
  } else if (verb == "classify" && !rest.empty()) {
    // An inline-query classify needs no session; hash the query text so
    // the load spreads but stays deterministic.
    size_t target = current_shard_ >= 0
                        ? static_cast<size_t>(current_shard_)
                        : router_->map_.OwnerOf(rest);
    result.response = Forward(target, request, /*idempotent=*/true);
  } else if (verb == "push" || verb == "load" || verb == "begin" ||
             verb == "+" || verb == "-" || verb == "epoch" ||
             verb == "resilience" || verb == "classify" ||
             verb == "explain") {
    if (current_shard_ < 0) {
      result.response = RouterErr(
          "no-session", "no session selected (open or use one first)");
      return result;
    }
    bool idempotent = verb == "resilience" || verb == "classify" ||
                      verb == "explain";
    result.response =
        Forward(static_cast<size_t>(current_shard_), request, idempotent);
  } else {
    result.response = RouterErr(
        "bad-request", "unknown verb '" + std::string(verb) + "'");
  }
  return result;
}

LineServerOptions ShardRouter::TransportOptions(const RouterOptions& options) {
  LineServerOptions transport;
  transport.host = options.host;
  transport.port = options.port;
  transport.threads = options.threads;
  transport.connections_metric = "shard.client_connections";
  return transport;
}

ShardRouter::ShardRouter(const RouterOptions& options)
    : options_(options),
      map_(options.shards.empty() ? 1 : options.shards.size(),
           options.vnodes),
      transport_(TransportOptions(options), [this] {
        return std::make_unique<RouterConnection>(this);
      }) {
  for (const ShardSpec& spec : options_.shards) {
    auto state = std::make_unique<ShardState>();
    state->spec = spec;
    shards_.push_back(std::move(state));
  }
  obs::SetGauge("shard.count", static_cast<double>(shards_.size()));
}

bool InProcessShards::Start(size_t count, const ServerOptions& base,
                            std::string* error) {
  Stop();
  for (size_t i = 0; i < count; ++i) {
    EngineOptions engine_options;
    engine_options.solver_threads = base.limits.solver_threads;
    engines_.push_back(std::make_unique<ResilienceEngine>(engine_options));
    ServerOptions options = base;
    options.port = 0;  // every in-process shard gets its own ephemeral port
    servers_.push_back(
        std::make_unique<ResilienceServer>(options, engines_.back().get()));
    if (!servers_.back()->Start(error)) {
      *error = "shard " + std::to_string(i) + ": " + *error;
      Stop();
      return false;
    }
  }
  return true;
}

std::vector<ShardSpec> InProcessShards::specs() const {
  std::vector<ShardSpec> specs;
  specs.reserve(servers_.size());
  for (const std::unique_ptr<ResilienceServer>& server : servers_) {
    ShardSpec spec;
    spec.host = "127.0.0.1";
    spec.port = server->port();
    specs.push_back(spec);
  }
  return specs;
}

void InProcessShards::Stop() {
  for (std::unique_ptr<ResilienceServer>& server : servers_) {
    if (server != nullptr) server->Stop();
  }
  servers_.clear();
  engines_.clear();
}

}  // namespace rescq
