#ifndef RESCQ_SERVER_SESSION_REGISTRY_H_
#define RESCQ_SERVER_SESSION_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "db/delta.h"
#include "resilience/incremental.h"

namespace rescq {

/// One named session as the registry tracks it. A session is born
/// *staging* (the base instance is being pushed or loaded into
/// `staging`), becomes *live* when `begin` constructs the
/// IncrementalSession (which takes its own copy of the base), and stays
/// addressable until closed.
///
/// Locking: `mu` is the session's own reader/writer lock and the only
/// synchronization a session needs. Mutations (push/load/begin/epoch
/// apply/close) run under the exclusive lock; read-only requests
/// (resilience/stats/explain) under the shared lock — exactly the
/// one-writer/concurrent-readers contract IncrementalSession documents.
/// Because every session has its own lock, one session's epoch apply
/// never blocks another session's solve; the registry's map mutex is
/// only ever held for create/lookup/close bookkeeping, never across a
/// solve.
struct SessionEntry {
  explicit SessionEntry(std::string session_name) : name(std::move(session_name)) {}

  const std::string name;
  mutable std::shared_mutex mu;

  // All fields below are guarded by mu.
  std::string query_text;  // canonical form, set at open
  Query query;             // parsed at open
  Database staging;        // the pushed/loaded base; moved out at begin
  size_t staging_tuples = 0;
  std::unique_ptr<IncrementalSession> session;  // null while staging
  bool closed = false;  // a handle may outlive its registry slot

  bool live() const { return session != nullptr; }
};

/// Thread-safe name -> session map. Entries are handed out as
/// shared_ptr so a connection can keep using a handle it resolved even
/// if another connection closes the name concurrently (the entry's
/// `closed` flag tells it so on the next request). All registry methods
/// only take the internal map mutex — per-session work happens under
/// the entry's own lock, outside any registry-wide serialization.
class SessionRegistry {
 public:
  /// `max_sessions` caps concurrently open sessions (0 = unlimited);
  /// exceeding it makes Open fail — the admission-control knob.
  explicit SessionRegistry(size_t max_sessions = 0)
      : max_sessions_(max_sessions) {}

  /// Creates a staging session. Fails (false + *error) when the name is
  /// taken or the session cap is reached; *entry is then untouched.
  bool Open(const std::string& name, std::shared_ptr<SessionEntry>* entry,
            std::string* error);

  /// The named session, or nullptr.
  std::shared_ptr<SessionEntry> Find(const std::string& name) const;

  /// Removes the name and marks the entry closed (under its exclusive
  /// lock, so in-flight requests on other connections finish first).
  /// False when the name is unknown.
  bool Close(const std::string& name, std::string* error);

  /// Currently open sessions.
  size_t size() const;

  /// Snapshot of every open entry, name order (for the `sessions` verb).
  std::vector<std::shared_ptr<SessionEntry>> List() const;

 private:
  const size_t max_sessions_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<SessionEntry>> entries_;  // name-sorted
};

}  // namespace rescq

#endif  // RESCQ_SERVER_SESSION_REGISTRY_H_
