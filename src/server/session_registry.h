#ifndef RESCQ_SERVER_SESSION_REGISTRY_H_
#define RESCQ_SERVER_SESSION_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "db/delta.h"
#include "resilience/incremental.h"

namespace rescq {

/// One named session as the registry tracks it. A session is born
/// *staging* (the base instance is being pushed or loaded into
/// `staging`), becomes *live* when `begin` constructs the
/// IncrementalSession (which takes its own copy of the base), and stays
/// addressable until closed.
///
/// Locking: `mu` is the session's own reader/writer lock and the only
/// synchronization a session needs. Mutations (push/load/begin/epoch
/// apply/close) run under the exclusive lock; read-only requests
/// (resilience/stats/explain) under the shared lock — exactly the
/// one-writer/concurrent-readers contract IncrementalSession documents.
/// Because every session has its own lock, one session's epoch apply
/// never blocks another session's solve; the registry's map mutex is
/// only ever held for create/lookup/close bookkeeping, never across a
/// solve.
struct SessionEntry {
  explicit SessionEntry(std::string session_name) : name(std::move(session_name)) {}

  const std::string name;
  mutable std::shared_mutex mu;

  // All fields below are guarded by mu.
  std::string query_text;  // canonical form, set at open
  Query query;             // parsed at open
  Database staging;        // the pushed/loaded base; moved out at begin
  size_t staging_tuples = 0;
  std::unique_ptr<IncrementalSession> session;  // null while staging
  bool closed = false;  // a handle may outlive its registry slot

  // Eviction bookkeeping, written without holding mu (atomics): the
  // handler stamps last_touch_ms after every request on the session,
  // and refreshes resident_bytes whenever a mutation changes the
  // session's footprint. Both are advisory — the sweep re-checks the
  // real state under the entry lock before evicting.
  std::atomic<int64_t> last_touch_ms{0};
  std::atomic<uint64_t> resident_bytes{0};

  bool live() const { return session != nullptr; }
};

/// Monotonic milliseconds for idle accounting (steady_clock, so wall
/// clock adjustments cannot make a hot session look idle).
int64_t SteadyNowMs();

/// Thread-safe name -> session map. Entries are handed out as
/// shared_ptr so a connection can keep using a handle it resolved even
/// if another connection closes the name concurrently (the entry's
/// `closed` flag tells it so on the next request). All registry methods
/// only take the internal map mutex — per-session work happens under
/// the entry's own lock, outside any registry-wide serialization.
class SessionRegistry {
 public:
  /// `max_sessions` caps concurrently open sessions (0 = unlimited);
  /// exceeding it makes Open fail — the admission-control knob.
  explicit SessionRegistry(size_t max_sessions = 0)
      : max_sessions_(max_sessions) {}

  /// Creates a staging session. Fails (false + *error) when the name is
  /// taken or the session cap is reached; *entry is then untouched.
  bool Open(const std::string& name, std::shared_ptr<SessionEntry>* entry,
            std::string* error);

  /// The named session, or nullptr.
  std::shared_ptr<SessionEntry> Find(const std::string& name) const;

  /// Removes the name and marks the entry closed (under its exclusive
  /// lock, so in-flight requests on other connections finish first).
  /// False when the name is unknown.
  bool Close(const std::string& name, std::string* error);

  /// Currently open sessions.
  size_t size() const;

  /// Snapshot of every open entry, name order (for the `sessions` verb).
  std::vector<std::shared_ptr<SessionEntry>> List() const;

  /// One eviction sweep; returns how many sessions dropped cold state.
  /// Two passes over a registry snapshot: every live session idle
  /// longer than `idle_ms` (0 = no idle eviction) is evicted, then —
  /// while the summed resident_bytes still exceed `max_resident_bytes`
  /// (0 = uncapped) — the remaining sessions are evicted coldest-first
  /// (oldest last_touch_ms). Each candidate is taken with a try_lock:
  /// a session busy serving a request is by definition hot and is
  /// skipped rather than waited for. Eviction drops the session's
  /// WitnessIndex and scratch (IncrementalSession::EvictColdState);
  /// the maintained answer survives and the index rebuilds lazily on
  /// the next epoch.
  size_t EvictColdSessions(int64_t now_ms, int64_t idle_ms,
                           uint64_t max_resident_bytes);

 private:
  const size_t max_sessions_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<SessionEntry>> entries_;  // name-sorted
};

}  // namespace rescq

#endif  // RESCQ_SERVER_SESSION_REGISTRY_H_
