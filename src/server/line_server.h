#ifndef RESCQ_SERVER_LINE_SERVER_H_
#define RESCQ_SERVER_LINE_SERVER_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "util/parallel.h"

namespace rescq {

/// What a connection handler wants done with one request line's reply.
/// `response` is sent verbatim (empty = no reply, the blank/comment
/// case); `close_connection` drops the connection after the reply;
/// `stop_server` additionally begins a graceful server stop.
struct LineResult {
  std::string response;
  bool close_connection = false;
  bool stop_server = false;
};

/// Per-connection request handler: the transport creates one per
/// accepted connection (connections are stateful — the current session,
/// the pending epoch) and calls Handle once per received line. A
/// trailing '\r' is stripped by the transport before dispatch, so CRLF
/// clients behave identically to LF clients.
class LineConnectionHandler {
 public:
  virtual ~LineConnectionHandler() = default;
  virtual LineResult Handle(std::string_view line) = 0;
};

/// How a LineServer binds and staffs itself.
struct LineServerOptions {
  /// Numeric IPv4 address to bind.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral one (read it back
  /// from port() after Start — the test and smoke harnesses depend on
  /// this).
  int port = 0;
  /// Connection handler threads: how many connections make progress
  /// concurrently.
  int threads = 4;
  /// Counter bumped once per accepted connection.
  std::string connections_metric = "server.connections";
};

/// The shared line-protocol TCP transport: a listening socket, an
/// accept thread feeding a queue of client fds, and a WorkerPool of
/// handler loops that each drive one connection at a time — one
/// request line in, one framed reply out, request lines capped at
/// 64 KiB. `rescq serve` (ResilienceServer) and `rescq route`
/// (ShardRouter) are both this transport under different
/// LineConnectionHandlers.
///
/// Lifecycle: Start() binds and spawns the threads; Wait() blocks until
/// the server stops (a handler's stop_server, Stop(), or a signal
/// relayed through SignalStop()); Stop() = RequestStop() + Wait(). The
/// destructor stops a still-running server.
///
/// Thread contract: Start once from one thread. RequestStop/SignalStop
/// are safe from any thread and idempotent; SignalStop is additionally
/// async-signal-safe (a single pipe write — the CLI's SIGINT/SIGTERM
/// handler calls it, and the accept thread turns it into a full stop).
class LineServer {
 public:
  /// Called once per accepted connection to make its handler.
  using HandlerFactory =
      std::function<std::unique_ptr<LineConnectionHandler>()>;

  LineServer(const LineServerOptions& options, HandlerFactory factory);
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Binds, listens, and spawns the accept thread and handler pool.
  /// False with *error on any socket failure (nothing is left running).
  bool Start(std::string* error);

  /// The bound TCP port (resolves port 0 to the kernel's choice).
  /// Valid after a successful Start.
  int port() const { return port_; }

  /// Begins a graceful stop: stops accepting, unblocks every in-flight
  /// read, and lets the handler loops drain. Returns immediately.
  void RequestStop();

  /// Async-signal-safe stop request (one pipe write; the accept thread
  /// escalates it to RequestStop).
  void SignalStop();

  /// Blocks until the server has fully stopped and joins its threads.
  void Wait();

  /// RequestStop() then Wait().
  void Stop();

 private:
  void AcceptLoop();
  void HandlerLoop();
  void ServeConnection(int fd);

  const LineServerOptions options_;
  HandlerFactory factory_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: signals + stop wake the accept poll
  int port_ = 0;

  std::thread accept_thread_;
  std::thread pool_host_;  // runs the WorkerPool's blocking Run as its
                           // last worker, hosting the handler loops
  std::unique_ptr<WorkerPool> pool_;

  std::mutex mu_;
  std::deque<int> pending_fds_;          // accepted, not yet picked up
  std::unordered_set<int> active_fds_;   // being served right now
  bool stop_ = false;
  bool started_ = false;
  bool joined_ = false;
  std::condition_variable queue_cv_;
};

}  // namespace rescq

#endif  // RESCQ_SERVER_LINE_SERVER_H_
