#ifndef RESCQ_SERVER_CLIENT_H_
#define RESCQ_SERVER_CLIENT_H_

#include <cstddef>
#include <string>

namespace rescq {

/// A blocking client for the rescq wire protocol (see
/// server/protocol.h): connect, send one request line, read the framed
/// reply. Used by `rescq loadgen`, the shard router, the server tests,
/// and anything else that wants to talk to a live `rescq serve`
/// in-process.
///
/// Every blocking step is bounded: connect respects
/// connect_timeout_ms, each reply line respects io_timeout_ms (both
/// default to kDefaultTimeoutMs; 0 disables the deadline), and a reply
/// line is capped at kMaxReplyLineBytes — a hung or babbling peer
/// costs a structured "timeout: ..." / "reply line over ..." error,
/// never a stuck or OOMing caller.
///
/// Not thread-safe: one LineClient per thread (that is the protocol's
/// natural shape — one connection, one outstanding request).
class LineClient {
 public:
  /// Default connect and per-reply-line deadline.
  static constexpr int kDefaultTimeoutMs = 5000;
  /// Longest reply line accepted, matching the server's request cap.
  static constexpr size_t kMaxReplyLineBytes = 64 * 1024;

  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Deadline for Connect to reach the server (ms; 0 = no deadline).
  void set_connect_timeout_ms(int ms) { connect_timeout_ms_ = ms; }
  /// Deadline for each reply line to arrive (ms; 0 = no deadline).
  void set_io_timeout_ms(int ms) { io_timeout_ms_ = ms; }
  /// Sets both deadlines at once.
  void set_timeout_ms(int ms) {
    connect_timeout_ms_ = ms;
    io_timeout_ms_ = ms;
  }

  /// Connects to host:port. The host is resolved with getaddrinfo —
  /// numeric IPv4/IPv6 and names ("localhost") all work — and every
  /// returned address is tried in order. False with *error on failure.
  bool Connect(const std::string& host, int port, std::string* error);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends `line` (a newline is appended) and reads the complete reply
  /// into *reply without its trailing newline — for the multi-line
  /// `explain`/`sessions` verbs the payload lines follow the header,
  /// '\n'-separated. False with *error on a socket error, a deadline
  /// ("timeout: ..."), an over-long reply line, or a framing
  /// violation; the connection is then closed.
  bool Request(const std::string& line, std::string* reply,
               std::string* error);

 private:
  bool ReadLine(std::string* line, std::string* error);

  int fd_ = -1;
  int connect_timeout_ms_ = kDefaultTimeoutMs;
  int io_timeout_ms_ = kDefaultTimeoutMs;
  std::string buffer_;
};

}  // namespace rescq

#endif  // RESCQ_SERVER_CLIENT_H_
