#ifndef RESCQ_SERVER_CLIENT_H_
#define RESCQ_SERVER_CLIENT_H_

#include <string>

namespace rescq {

/// A blocking client for the rescq wire protocol (see
/// server/protocol.h): connect, send one request line, read the framed
/// reply. Used by `rescq loadgen`, the server tests, and anything else
/// that wants to talk to a live `rescq serve` in-process.
///
/// Not thread-safe: one LineClient per thread (that is the protocol's
/// natural shape — one connection, one outstanding request).
class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Connects to a numeric IPv4 host:port. False with *error on failure.
  bool Connect(const std::string& host, int port, std::string* error);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends `line` (a newline is appended) and reads the complete reply
  /// into *reply without its trailing newline — for the multi-line
  /// `explain`/`sessions` verbs the payload lines follow the header,
  /// '\n'-separated. False with *error on a socket error or a framing
  /// violation; the connection is then closed.
  bool Request(const std::string& line, std::string* reply,
               std::string* error);

 private:
  bool ReadLine(std::string* line, std::string* error);

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace rescq

#endif  // RESCQ_SERVER_CLIENT_H_
