#ifndef RESCQ_SERVER_SHARD_MAP_H_
#define RESCQ_SERVER_SHARD_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/fnv.h"

namespace rescq {

/// Consistent-hash placement of session names onto shards. Each shard
/// contributes `vnodes` points on a 64-bit FNV-1a ring; a name is owned
/// by the first ring point at or after its hash (wrapping at the top).
/// The map is a pure function of (shard_count, vnodes): every router
/// instance over the same shard list computes the same placement, and
/// growing the shard count moves only the names whose arcs the new
/// points cut — roughly 1/(n+1) of them — instead of rehashing
/// everything (the property modulo-hashing lacks).
class ShardMap {
 public:
  explicit ShardMap(size_t shard_count, size_t vnodes = 64)
      : shard_count_(shard_count == 0 ? 1 : shard_count) {
    ring_.reserve(shard_count_ * vnodes);
    for (size_t shard = 0; shard < shard_count_; ++shard) {
      for (size_t v = 0; v < vnodes; ++v) {
        Fnv1a hash;
        hash.MixString("shard-" + std::to_string(shard));
        hash.MixU32(static_cast<uint32_t>(v));
        ring_.emplace_back(Spread(hash.digest()),
                           static_cast<uint32_t>(shard));
      }
    }
    // Sorting by (hash, shard) makes hash collisions deterministic too.
    std::sort(ring_.begin(), ring_.end());
  }

  size_t shard_count() const { return shard_count_; }

  /// The shard that owns `name` — stable for a fixed shard count.
  size_t OwnerOf(std::string_view name) const {
    Fnv1a hash;
    hash.MixString(std::string(name));
    uint64_t point = Spread(hash.digest());
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), std::make_pair(point, uint32_t{0}));
    if (it == ring_.end()) it = ring_.begin();  // wrap past the top
    return it->second;
  }

 private:
  /// FNV-1a's high bits avalanche poorly on short keys, and ring order
  /// is decided by exactly those bits — without a finalizer a 4-shard
  /// ring gives one shard ~85% of the keyspace. Murmur3's fmix64 fixes
  /// the dispersion while staying a pure deterministic function.
  static uint64_t Spread(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  size_t shard_count_;
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

}  // namespace rescq

#endif  // RESCQ_SERVER_SHARD_MAP_H_
