#ifndef RESCQ_SERVER_PROTOCOL_H_
#define RESCQ_SERVER_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "db/delta.h"
#include "resilience/engine.h"
#include "server/line_server.h"
#include "server/session_registry.h"

namespace rescq {

// The rescq wire protocol: one request line in, one reply out (blank
// and '#'-comment lines are ignored without a reply, so update files
// can be piped verbatim). Replies are a single line — `ok ...` or
// `err <code> <message>` — except `explain` and `sessions`, whose first
// line `ok <verb> <n>` announces n payload lines. The full grammar
// lives in docs/SERVER.md; tests/golden/server_transcript.golden pins
// the bytes.
//
//   open <session> <query>        create a named staging session
//   use <session>                 switch this connection's session
//   push R(a,b)                   add one base fact (staging only)
//   load <path>                   replace the staged base from a
//                                 server-side tuple file
//   begin [witness_limit=N] [node_budget=N]
//                                 build the IncrementalSession (epoch 0)
//   + R(a,b)  /  - S(c)           queue an update into the pending epoch
//   epoch                         apply the pending epoch incrementally
//   resilience                    the maintained answer (never re-solves)
//   classify [<query>]            complexity of the session (or inline) query
//   explain                       the engine's resilience plan (multi-line)
//   stats                         one-line session statistics
//   sessions                      list open sessions (multi-line)
//   close [<session>]             close the current (or named) session
//   ping / quit / shutdown        health check / drop connection / stop server

/// Admission-control and safety limits, fixed at server start. Zero
/// always means "unlimited"/"no default".
struct ServerLimits {
  /// Concurrently open sessions (enforced by SessionRegistry).
  size_t max_sessions = 0;
  /// Active tuples a staged base may reach via push/load.
  size_t max_base_tuples = 0;
  /// Updates one pending epoch may queue.
  size_t max_epoch_updates = 0;
  /// Witness budget applied when `begin` does not ask for one; a `begin`
  /// asking for more than `max_witness_limit` (or for unlimited when a
  /// max is set — then clamped to the max) is admission-controlled.
  size_t default_witness_limit = 0;
  size_t max_witness_limit = 0;
  /// Same scheme for the branch-and-bound node budget.
  uint64_t default_node_budget = 0;
  uint64_t max_node_budget = 0;
  /// EngineOptions::solver_threads for every session's epoch fan-out.
  int solver_threads = 1;
  /// Cold-state eviction (0 = disabled): when the estimated resident
  /// bytes across all live sessions exceed `max_resident_bytes`, the
  /// coldest sessions (oldest last touch first) drop their WitnessIndex
  /// and refresh scratch until back under the cap; any session idle
  /// longer than `evict_idle_ms` is evicted regardless of the cap. An
  /// evicted session still answers reads from its maintained state and
  /// rebuilds the index lazily on its next epoch.
  uint64_t max_resident_bytes = 0;
  int64_t evict_idle_ms = 0;
  /// Gate the `load` (server-side file read) and `shutdown` verbs.
  bool allow_load = true;
  bool allow_shutdown = true;
};

/// What one handled request tells the transport to do (the shared
/// transport's result type — see server/line_server.h).
using ProtocolResult = LineResult;

/// Per-connection protocol state machine. Holds the connection's
/// current session handle and its pending (not yet applied) epoch;
/// everything shared — the session registry, the plan-cache-bearing
/// engine, the limits — is borrowed and must outlive the handler.
///
/// Thread contract: one handler belongs to one connection and is
/// driven from one thread at a time; any number of handlers run
/// concurrently against the same registry/engine (per-session
/// shared_mutex + thread-safe engine). Handle never throws and never
/// aborts on any input byte sequence — malformed requests come back as
/// `err` lines.
class ProtocolHandler : public LineConnectionHandler {
 public:
  ProtocolHandler(SessionRegistry* registry, ResilienceEngine* engine,
                  const ServerLimits* limits);

  /// Handles one request line (without its trailing newline).
  ProtocolResult Handle(std::string_view line) override;

 private:
  /// The connection's session if it is still open; err text otherwise.
  std::shared_ptr<SessionEntry> Current(std::string* error);

  std::string DoOpen(std::string_view args);
  std::string DoUse(std::string_view args);
  std::string DoPush(std::string_view args);
  std::string DoLoad(std::string_view args);
  std::string DoBegin(std::string_view args);
  std::string DoUpdate(std::string_view line);
  std::string DoEpoch();
  std::string DoResilience();
  std::string DoClassify(std::string_view args);
  std::string DoExplain();
  std::string DoStats();
  std::string DoSessions();
  std::string DoClose(std::string_view args);

  SessionRegistry* registry_;
  ResilienceEngine* engine_;
  const ServerLimits* limits_;

  std::shared_ptr<SessionEntry> current_;
  std::vector<Update> pending_;
};

}  // namespace rescq

#endif  // RESCQ_SERVER_PROTOCOL_H_
