#ifndef RESCQ_SERVER_LOADGEN_H_
#define RESCQ_SERVER_LOADGEN_H_

#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <string>

namespace rescq {

/// What `rescq loadgen` throws at a live server: M concurrent
/// connections, each opening its own session over a generated scenario
/// instance, then looping churn epochs and queries against it. Every
/// connection's base and update stream derive deterministically from
/// `seed` + its connection index.
struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 4;
  /// Scenario family for the per-session base instance (workload/scenario).
  std::string scenario = "vc_er";
  /// Query override; empty = the scenario's default query.
  std::string query;
  int size = 8;
  double density = 0.5;
  /// Churn kind + per-connection stream shape (workload/churn).
  std::string churn = "mixed";
  int epochs = 4;
  double rate = 0.1;
  uint64_t seed = 1;
  /// After every epoch, mirror the session's database locally and
  /// compare the served answer against a from-scratch
  /// ComputeResilienceExact — the acceptance oracle.
  bool check_oracle = false;
  /// begin-time budgets forwarded to the server (0 = omit).
  uint64_t witness_limit = 0;
  uint64_t node_budget = 0;
  /// Session names are "<prefix>-<connection>".
  std::string session_prefix = "loadgen";
  /// Connect/receive deadline on every connection's LineClient (ms;
  /// 0 = no deadline). A dead or wedged server fails the run with a
  /// structured transport error instead of hanging it.
  int timeout_ms = 30000;
};

/// Latency summary over one request class, in milliseconds.
struct LatencyStats {
  uint64_t count = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;
};

/// What a loadgen run measured. `error` is non-empty when the run
/// aborted (connect failure, protocol violation) — the numbers then
/// cover only what completed.
struct LoadgenReport {
  LoadgenOptions options;
  uint64_t requests = 0;       // requests sent (each got a reply)
  uint64_t err_replies = 0;    // `err ...` replies (0 in a healthy run)
  uint64_t epochs_applied = 0;
  uint64_t oracle_checks = 0;
  uint64_t oracle_mismatches = 0;
  double wall_ms = 0;
  double requests_per_sec = 0;
  LatencyStats latency;        // every request
  LatencyStats epoch_latency;  // `epoch` requests only
  std::string error;
};

/// Runs the open → churn → query loop over `options.connections`
/// concurrent connections and aggregates the measurements.
LoadgenReport RunLoadgen(const LoadgenOptions& options);

/// Human-readable summary, as printed by `rescq loadgen`.
void PrintLoadgenTable(const LoadgenReport& report, std::FILE* out);

/// CSV: one header row + one row per latency class.
void WriteLoadgenCsv(const LoadgenReport& report, std::ostream& out);

/// JSON document (`rescq-loadgen-report/v1`):
/// {"schema", "options", "summary", "latency": {"all", "epoch"}}.
void WriteLoadgenJson(const LoadgenReport& report, std::ostream& out);

bool SaveLoadgenCsv(const LoadgenReport& report, const std::string& path,
                    std::string* error);
bool SaveLoadgenJson(const LoadgenReport& report, const std::string& path,
                     std::string* error);

}  // namespace rescq

#endif  // RESCQ_SERVER_LOADGEN_H_
