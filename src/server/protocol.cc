#include "server/protocol.h"

#include <chrono>
#include <utility>

#include "complexity/classifier.h"
#include "cq/parser.h"
#include "db/tuple_io.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace rescq {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string Err(const char* code, const std::string& message) {
  obs::Count("server.errors");
  return std::string("err ") + code + " " + message + "\n";
}

/// Splits "verb rest-of-line" (rest may be empty).
void SplitVerb(std::string_view line, std::string_view* verb,
               std::string_view* rest) {
  size_t space = line.find_first_of(" \t");
  if (space == std::string_view::npos) {
    *verb = line;
    *rest = std::string_view();
    return;
  }
  *verb = line.substr(0, space);
  *rest = Trim(line.substr(space + 1));
}

/// Parses trailing "key=value" budget options ("witness_limit=100
/// node_budget=50000"). Unmentioned keys keep their passed-in values;
/// false + *error on an unknown key or a bad number.
bool ParseBudgetOptions(std::string_view args, uint64_t* witness_limit,
                        uint64_t* node_budget, std::string* error) {
  for (const std::string& token : SplitTrimmed(args, ' ')) {
    size_t eq = token.find('=');
    std::string key = token.substr(0, eq == std::string::npos ? token.size()
                                                              : eq);
    if (eq == std::string::npos) {
      *error = "expected key=value, got '" + token + "'";
      return false;
    }
    uint64_t* dst = nullptr;
    if (key == "witness_limit") dst = witness_limit;
    if (key == "node_budget") dst = node_budget;
    if (dst == nullptr) {
      *error = "unknown option '" + key + "'";
      return false;
    }
    if (!ParseUint64(token.substr(eq + 1), dst)) {
      *error = key + " needs an unsigned integer, got '" +
               token.substr(eq + 1) + "'";
      return false;
    }
  }
  return true;
}

/// Admission control for one budget knob: an explicit request beyond
/// the max is rejected; an absent/unlimited request is clamped to the
/// default, then to the max. Returns false (budget rejection) with
/// *error set.
bool AdmitBudget(const char* knob, uint64_t requested, bool requested_set,
                 uint64_t def, uint64_t max, uint64_t* effective,
                 std::string* error) {
  uint64_t value = requested_set ? requested : def;
  if (max != 0) {
    if (requested_set && (requested == 0 || requested > max)) {
      *error = StrFormat("%s %llu exceeds the server's max %llu", knob,
                         static_cast<unsigned long long>(requested),
                         static_cast<unsigned long long>(max));
      return false;
    }
    if (value == 0) value = max;
  }
  *effective = value;
  return true;
}

/// The key=value tail shared by the `begin` and `epoch` replies.
std::string OutcomeFields(const EpochOutcome& o, int active_tuples) {
  return StrFormat(
      "n=%d resilience=%d unbreakable=%d lower=%d upper=%d inserted=%d "
      "deleted=%d sets=%zu tuples=%d resolved=%d",
      o.epoch, o.resilience, o.unbreakable ? 1 : 0, o.lower_bound,
      o.upper_bound, o.inserted, o.deleted, o.family_sets, active_tuples,
      o.resolved ? 1 : 0);
}

/// A session name: non-empty, no whitespace, and short enough that a
/// hostile client cannot grow the registry's keys without bound.
bool ValidSessionName(std::string_view name, std::string* error) {
  if (name.empty() || name.size() > 128 ||
      name.find_first_of(" \t") != std::string_view::npos) {
    *error = "session names are 1-128 characters with no whitespace";
    return false;
  }
  return true;
}

const char* RequestCounterName(std::string_view verb) {
  if (verb == "open") return "server.requests.open";
  if (verb == "use") return "server.requests.use";
  if (verb == "push") return "server.requests.push";
  if (verb == "load") return "server.requests.load";
  if (verb == "begin") return "server.requests.begin";
  if (verb == "+" || verb == "-") return "server.requests.update";
  if (verb == "epoch") return "server.requests.epoch";
  if (verb == "resilience") return "server.requests.resilience";
  if (verb == "classify") return "server.requests.classify";
  if (verb == "explain") return "server.requests.explain";
  if (verb == "stats") return "server.requests.stats";
  if (verb == "sessions") return "server.requests.sessions";
  if (verb == "close") return "server.requests.close";
  if (verb == "ping") return "server.requests.ping";
  if (verb == "quit") return "server.requests.quit";
  if (verb == "shutdown") return "server.requests.shutdown";
  return "server.requests.unknown";
}

}  // namespace

ProtocolHandler::ProtocolHandler(SessionRegistry* registry,
                                 ResilienceEngine* engine,
                                 const ServerLimits* limits)
    : registry_(registry), engine_(engine), limits_(limits) {}

ProtocolResult ProtocolHandler::Handle(std::string_view line) {
  ProtocolResult result;
  // Tolerate CRLF line endings (telnet/netcat-style clients) before any
  // dispatch decision sees the line.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  line = Trim(line);
  if (line.empty() || line[0] == '#') return result;  // no reply

  Clock::time_point start = Clock::now();
  std::string_view verb, rest;
  if (line[0] == '+' || line[0] == '-') {
    verb = line.substr(0, 1);
  } else {
    SplitVerb(line, &verb, &rest);
  }
  obs::Count("server.requests");
  obs::Count(RequestCounterName(verb));

  if (verb == "ping") {
    result.response = "ok pong\n";
  } else if (verb == "quit") {
    result.response = "ok bye\n";
    result.close_connection = true;
  } else if (verb == "shutdown") {
    if (!limits_->allow_shutdown) {
      result.response = Err("shutdown-disabled",
                            "this server does not honor the shutdown verb");
    } else {
      result.response = "ok shutdown\n";
      result.close_connection = true;
      result.stop_server = true;
    }
  } else if (verb == "open") {
    result.response = DoOpen(rest);
  } else if (verb == "use") {
    result.response = DoUse(rest);
  } else if (verb == "push") {
    result.response = DoPush(rest);
  } else if (verb == "load") {
    result.response = DoLoad(rest);
  } else if (verb == "begin") {
    result.response = DoBegin(rest);
  } else if (verb == "+" || verb == "-") {
    result.response = DoUpdate(line);
  } else if (verb == "epoch") {
    result.response = DoEpoch();
    obs::ObserveLatencyMs("server.epoch_ms", MsSince(start));
  } else if (verb == "resilience") {
    result.response = DoResilience();
  } else if (verb == "classify") {
    result.response = DoClassify(rest);
  } else if (verb == "explain") {
    result.response = DoExplain();
  } else if (verb == "stats") {
    result.response = DoStats();
  } else if (verb == "sessions") {
    result.response = DoSessions();
  } else if (verb == "close") {
    result.response = DoClose(rest);
  } else {
    result.response =
        Err("bad-request", "unknown verb '" + std::string(verb) + "'");
  }
  obs::ObserveLatencyMs("server.request_ms", MsSince(start));

  // Eviction bookkeeping after the request ran: the touched session is
  // stamped *first*, so a sweep triggered by this very request never
  // counts it as idle. With both knobs at their zero defaults (every
  // golden/byte-reproducible script) this is two atomic loads and out.
  if (limits_->evict_idle_ms > 0 || limits_->max_resident_bytes > 0) {
    int64_t now_ms = SteadyNowMs();
    if (current_ != nullptr) {
      current_->last_touch_ms.store(now_ms, std::memory_order_relaxed);
    }
    registry_->EvictColdSessions(now_ms, limits_->evict_idle_ms,
                                 limits_->max_resident_bytes);
  }
  return result;
}

std::shared_ptr<SessionEntry> ProtocolHandler::Current(std::string* error) {
  if (current_ == nullptr) {
    *error = "no session selected (open or use one first)";
    return nullptr;
  }
  return current_;
}

std::string ProtocolHandler::DoOpen(std::string_view args) {
  std::string_view name, query_text;
  SplitVerb(args, &name, &query_text);
  std::string error;
  if (!ValidSessionName(name, &error)) return Err("bad-request", error);
  if (query_text.empty()) {
    return Err("bad-request", "open needs a query: open <session> <query>");
  }
  ParseResult parsed = ParseQuery(query_text);
  if (!parsed.ok) return Err("parse", parsed.error);

  std::shared_ptr<SessionEntry> entry;
  if (!registry_->Open(std::string(name), &entry, &error)) {
    if (error.find("already exists") != std::string::npos) {
      return Err("session-exists", error);
    }
    obs::Count("server.rejected.limit");
    return Err("limit", error);
  }
  {
    std::unique_lock<std::shared_mutex> lock(entry->mu);
    entry->query = parsed.query;
    entry->query_text = parsed.query.ToString();
  }
  // Warm the shared plan cache: every session for an already-seen query
  // (the loadgen steady state) plans exactly once per server lifetime.
  engine_->Plan(parsed.query);
  current_ = std::move(entry);
  pending_.clear();
  obs::SetGauge("server.active_sessions",
                static_cast<double>(registry_->size()));
  return "ok open " + std::string(name) + " staging\n";
}

std::string ProtocolHandler::DoUse(std::string_view args) {
  std::string error;
  if (!ValidSessionName(args, &error)) return Err("bad-request", error);
  std::shared_ptr<SessionEntry> entry = registry_->Find(std::string(args));
  if (entry == nullptr) {
    return Err("no-session", "no session named '" + std::string(args) + "'");
  }
  current_ = std::move(entry);
  pending_.clear();
  std::shared_lock<std::shared_mutex> lock(current_->mu);
  return "ok use " + current_->name +
         (current_->live() ? " live\n" : " staging\n");
}

std::string ProtocolHandler::DoPush(std::string_view args) {
  std::string error;
  std::shared_ptr<SessionEntry> entry = Current(&error);
  if (entry == nullptr) return Err("no-session", error);

  std::string relation;
  std::vector<std::string> constants;
  if (!ParseFactLine(args, &relation, &constants, &error)) {
    return Err("parse", error);
  }
  std::unique_lock<std::shared_mutex> lock(entry->mu);
  if (entry->closed) return Err("closed", "session was closed");
  if (entry->live()) {
    return Err("not-staging",
               "session is live; push base facts before begin");
  }
  if (limits_->max_base_tuples != 0 &&
      entry->staging_tuples >= limits_->max_base_tuples) {
    obs::Count("server.rejected.limit");
    return Err("limit",
               StrFormat("base limit reached (max_base_tuples=%zu)",
                         limits_->max_base_tuples));
  }
  if (!AddFactChecked(&entry->staging, relation, constants, &error)) {
    return Err("parse", error);
  }
  entry->staging_tuples =
      static_cast<size_t>(entry->staging.NumActiveTuples());
  return StrFormat("ok push %zu\n", entry->staging_tuples);
}

std::string ProtocolHandler::DoLoad(std::string_view args) {
  std::string error;
  std::shared_ptr<SessionEntry> entry = Current(&error);
  if (entry == nullptr) return Err("no-session", error);
  if (!limits_->allow_load) {
    return Err("bad-request", "this server does not honor the load verb");
  }
  if (args.empty()) return Err("bad-request", "load needs a file path");

  // Read outside the session lock (file I/O can be slow), then swap in.
  Database loaded;
  if (!LoadTupleFile(std::string(args), &loaded, &error)) {
    return Err("io", error);
  }
  size_t tuples = static_cast<size_t>(loaded.NumActiveTuples());
  if (limits_->max_base_tuples != 0 && tuples > limits_->max_base_tuples) {
    obs::Count("server.rejected.limit");
    return Err("limit",
               StrFormat("file has %zu tuples, over max_base_tuples=%zu",
                         tuples, limits_->max_base_tuples));
  }
  std::unique_lock<std::shared_mutex> lock(entry->mu);
  if (entry->closed) return Err("closed", "session was closed");
  if (entry->live()) {
    return Err("not-staging", "session is live; load replaces a staged base");
  }
  entry->staging = std::move(loaded);
  entry->staging_tuples = tuples;
  return StrFormat("ok load %zu %zu\n", tuples, tuples);
}

std::string ProtocolHandler::DoBegin(std::string_view args) {
  std::string error;
  std::shared_ptr<SessionEntry> entry = Current(&error);
  if (entry == nullptr) return Err("no-session", error);

  uint64_t witness_req = 0, node_req = 0;
  bool witness_set = args.find("witness_limit=") != std::string_view::npos;
  bool node_set = args.find("node_budget=") != std::string_view::npos;
  if (!ParseBudgetOptions(args, &witness_req, &node_req, &error)) {
    return Err("bad-request", error);
  }
  uint64_t witness_limit = 0, node_budget = 0;
  if (!AdmitBudget("witness_limit", witness_req, witness_set,
                   limits_->default_witness_limit, limits_->max_witness_limit,
                   &witness_limit, &error) ||
      !AdmitBudget("node_budget", node_req, node_set,
                   limits_->default_node_budget, limits_->max_node_budget,
                   &node_budget, &error)) {
    obs::Count("server.rejected.budget");
    return Err("budget", error);
  }

  EngineOptions options;
  options.witness_limit = static_cast<size_t>(witness_limit);
  options.exact_node_budget = node_budget;
  options.solver_threads = limits_->solver_threads;

  std::unique_lock<std::shared_mutex> lock(entry->mu);
  if (entry->closed) return Err("closed", "session was closed");
  if (entry->live()) return Err("not-staging", "session already began");
  entry->session = std::make_unique<IncrementalSession>(
      entry->query, std::move(entry->staging), options);
  entry->staging = Database();
  const EpochOutcome& outcome = entry->session->Peek();
  entry->resident_bytes.store(entry->session->ApproxMemory().TotalBytes(),
                              std::memory_order_relaxed);
  if (entry->session->poisoned()) {
    return Err("budget", outcome.error);
  }
  return "ok begin " +
         OutcomeFields(outcome, entry->session->db().NumActiveTuples()) + "\n";
}

std::string ProtocolHandler::DoUpdate(std::string_view line) {
  std::string error;
  std::shared_ptr<SessionEntry> entry = Current(&error);
  if (entry == nullptr) return Err("no-session", error);

  Update update;
  if (!ParseUpdateLine(line, &update, &error)) return Err("parse", error);
  if (limits_->max_epoch_updates != 0 &&
      pending_.size() >= limits_->max_epoch_updates) {
    obs::Count("server.rejected.limit");
    return Err("limit",
               StrFormat("pending epoch limit reached (max_epoch_updates=%zu)",
                         limits_->max_epoch_updates));
  }

  // Validate the whole pending batch plus the candidate against the live
  // database's arities now, so the offending line (not the later
  // `epoch`) gets the structured error.
  UpdateLog probe;
  probe.epochs.emplace_back();
  probe.epochs.back().updates = pending_;
  probe.epochs.back().updates.push_back(update);
  {
    std::shared_lock<std::shared_mutex> lock(entry->mu);
    if (entry->closed) return Err("closed", "session was closed");
    if (!entry->live()) {
      return Err("not-live", "session has no base yet (begin first)");
    }
    if (!ValidateUpdateLog(probe, entry->session->db(), &error)) {
      return Err("parse", error);
    }
  }
  pending_.push_back(std::move(update));
  return StrFormat("ok queued %zu\n", pending_.size());
}

std::string ProtocolHandler::DoEpoch() {
  std::string error;
  std::shared_ptr<SessionEntry> entry = Current(&error);
  if (entry == nullptr) return Err("no-session", error);

  Epoch epoch;
  epoch.updates = std::move(pending_);
  pending_.clear();

  std::unique_lock<std::shared_mutex> lock(entry->mu);
  if (entry->closed) return Err("closed", "session was closed");
  if (!entry->live()) {
    return Err("not-live", "session has no base yet (begin first)");
  }
  if (entry->session->poisoned()) {
    return Err("poisoned", entry->session->Peek().error);
  }
  // Re-validate under the exclusive lock: another connection may have
  // reshaped the database since the updates were queued, and ApplyEpoch
  // treats an arity mismatch as a programmer error.
  UpdateLog probe;
  probe.epochs.push_back(epoch);
  if (!ValidateUpdateLog(probe, entry->session->db(), &error)) {
    return Err("parse", error);
  }
  EpochOutcome outcome = entry->session->Apply(epoch);
  entry->resident_bytes.store(entry->session->ApproxMemory().TotalBytes(),
                              std::memory_order_relaxed);
  if (entry->session->poisoned()) {
    return Err("budget", outcome.error);
  }
  return "ok epoch " +
         OutcomeFields(outcome, entry->session->db().NumActiveTuples()) + "\n";
}

std::string ProtocolHandler::DoResilience() {
  std::string error;
  std::shared_ptr<SessionEntry> entry = Current(&error);
  if (entry == nullptr) return Err("no-session", error);

  std::shared_lock<std::shared_mutex> lock(entry->mu);
  if (entry->closed) return Err("closed", "session was closed");
  if (!entry->live()) {
    return Err("not-live", "session has no base yet (begin first)");
  }
  if (entry->session->poisoned()) {
    return Err("poisoned", entry->session->Peek().error);
  }
  const EpochOutcome& o = entry->session->Peek();
  if (o.unbreakable) return "ok resilience unbreakable\n";
  if (o.lower_bound < o.upper_bound) {
    return StrFormat("ok resilience %d unproven\n", o.resilience);
  }
  return StrFormat("ok resilience %d\n", o.resilience);
}

std::string ProtocolHandler::DoClassify(std::string_view args) {
  Query q;
  if (!args.empty()) {
    ParseResult parsed = ParseQuery(args);
    if (!parsed.ok) return Err("parse", parsed.error);
    q = parsed.query;
  } else {
    std::string error;
    std::shared_ptr<SessionEntry> entry = Current(&error);
    if (entry == nullptr) return Err("no-session", error);
    std::shared_lock<std::shared_mutex> lock(entry->mu);
    if (entry->closed) return Err("closed", "session was closed");
    q = entry->query;
  }
  Classification c = ClassifyResilience(q);
  return std::string("ok classify ") + ComplexityName(c.complexity) + " " +
         c.pattern + "\n";
}

std::string ProtocolHandler::DoExplain() {
  std::string error;
  std::shared_ptr<SessionEntry> entry = Current(&error);
  if (entry == nullptr) return Err("no-session", error);
  Query q;
  {
    std::shared_lock<std::shared_mutex> lock(entry->mu);
    if (entry->closed) return Err("closed", "session was closed");
    q = entry->query;
  }
  // The shared engine's plan cache makes this a lookup after the first
  // explain/open of the query, for any session.
  std::shared_ptr<const ResiliencePlan> plan = engine_->Plan(q);
  std::string text = plan->Explain(engine_->registry());
  std::vector<std::string> lines = Split(text, '\n');
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  std::string reply = StrFormat("ok explain %zu\n", lines.size());
  for (const std::string& l : lines) reply += l + "\n";
  return reply;
}

std::string ProtocolHandler::DoStats() {
  if (current_ == nullptr) {
    // Server-scope stats: one deterministic, summable line. The shard
    // router scatter-gathers exactly this form and adds the fields up.
    size_t live = 0, staging = 0, sets = 0;
    long long tuples = 0;
    for (const std::shared_ptr<SessionEntry>& entry : registry_->List()) {
      std::shared_lock<std::shared_mutex> lock(entry->mu);
      if (entry->live()) {
        ++live;
        tuples += entry->session->db().NumActiveTuples();
        sets += entry->session->Peek().family_sets;
      } else {
        ++staging;
        tuples += static_cast<long long>(entry->staging_tuples);
      }
    }
    return StrFormat(
        "ok stats scope=server sessions=%zu live=%zu staging=%zu "
        "tuples=%lld sets=%zu\n",
        live + staging, live, staging, tuples, sets);
  }
  std::shared_ptr<SessionEntry> entry = current_;

  std::shared_lock<std::shared_mutex> lock(entry->mu);
  if (entry->closed) return Err("closed", "session was closed");
  if (!entry->live()) {
    return StrFormat("ok stats session=%s state=staging tuples=%zu pending=%zu\n",
                     entry->name.c_str(), entry->staging_tuples,
                     pending_.size());
  }
  const EpochOutcome& o = entry->session->Peek();
  // Raw byte counts stay in the mem.* gauges (they vary across
  // platforms); the stats line carries only the deterministic eviction
  // state so golden transcripts keep pinning every byte.
  return StrFormat(
      "ok stats session=%s state=live epoch=%d tuples=%d sets=%zu "
      "resilience=%d lower=%d upper=%d unbreakable=%d pending=%zu "
      "poisoned=%d index=%s evictions=%llu rebuilds=%llu\n",
      entry->name.c_str(), o.epoch, entry->session->db().NumActiveTuples(),
      o.family_sets, o.resilience, o.lower_bound, o.upper_bound,
      o.unbreakable ? 1 : 0, pending_.size(),
      entry->session->poisoned() ? 1 : 0,
      entry->session->index_resident() ? "resident" : "evicted",
      static_cast<unsigned long long>(entry->session->evictions()),
      static_cast<unsigned long long>(entry->session->rebuilds()));
}

std::string ProtocolHandler::DoSessions() {
  std::vector<std::shared_ptr<SessionEntry>> entries = registry_->List();
  std::string reply = StrFormat("ok sessions %zu\n", entries.size());
  for (const std::shared_ptr<SessionEntry>& entry : entries) {
    std::shared_lock<std::shared_mutex> lock(entry->mu);
    if (entry->live()) {
      reply += StrFormat("%s live epoch=%d tuples=%d\n", entry->name.c_str(),
                         entry->session->Peek().epoch,
                         entry->session->db().NumActiveTuples());
    } else {
      reply += StrFormat("%s staging tuples=%zu\n", entry->name.c_str(),
                         entry->staging_tuples);
    }
  }
  return reply;
}

std::string ProtocolHandler::DoClose(std::string_view args) {
  std::string name;
  if (!args.empty()) {
    name = std::string(args);
  } else {
    std::string error;
    std::shared_ptr<SessionEntry> entry = Current(&error);
    if (entry == nullptr) return Err("no-session", error);
    name = entry->name;
  }
  std::string error;
  if (!registry_->Close(name, &error)) return Err("no-session", error);
  if (current_ != nullptr && current_->name == name) {
    current_.reset();
    pending_.clear();
  }
  obs::SetGauge("server.active_sessions",
                static_cast<double>(registry_->size()));
  return "ok close " + name + "\n";
}

}  // namespace rescq
