#include "server/line_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace rescq {

namespace {

// A request line longer than this is hostile or garbage; the connection
// gets one structured error and is dropped.
constexpr size_t kMaxLineBytes = 64 * 1024;

/// send() the whole buffer, riding out EINTR and partial writes.
/// MSG_NOSIGNAL: a client that hung up mid-reply costs us an EPIPE
/// errno, never a SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

LineServer::LineServer(const LineServerOptions& options,
                       HandlerFactory factory)
    : options_(options), factory_(std::move(factory)) {}

LineServer::~LineServer() { Stop(); }

bool LineServer::Start(std::string* error) {
  if (::pipe(wake_fds_) != 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host '" + options_.host + "' (numeric IPv4 required)";
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *error = "bind " + options_.host + ":" + std::to_string(options_.port) +
             ": " + std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    return false;
  }
  port_ = ntohs(addr.sin_port);

  int threads = options_.threads < 1 ? 1 : options_.threads;
  pool_ = std::make_unique<WorkerPool>(threads);
  // The pool's Run blocks its caller as the last worker, so a dedicated
  // host thread lends itself to the pool; every pool slot runs one
  // HandlerLoop until stop.
  pool_host_ = std::thread([this, threads] {
    pool_->Run(static_cast<size_t>(threads),
               [this](size_t) { HandlerLoop(); });
  });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return true;
}

void LineServer::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_fds_[0];
    fds[1].events = POLLIN;
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      // A SignalStop (pipe write from a signal handler) or RequestStop
      // woke us: escalate to the full stop from normal thread context.
      RequestStop();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    obs::Count(options_.connections_metric.c_str());
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) {
        ::close(fd);
        break;
      }
      pending_fds_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void LineServer::HandlerLoop() {
  for (;;) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !pending_fds_.empty(); });
      if (pending_fds_.empty()) return;  // stop, queue drained
      fd = pending_fds_.front();
      pending_fds_.pop_front();
      if (stop_) {
        ::close(fd);
        continue;  // drain the rest, then exit
      }
      active_fds_.insert(fd);
    }
    ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_fds_.erase(fd);
    }
    ::close(fd);
  }
}

void LineServer::ServeConnection(int fd) {
  std::unique_ptr<LineConnectionHandler> handler = factory_();
  std::string buffer;
  char chunk[4096];
  for (;;) {
    size_t newline;
    while ((newline = buffer.find('\n')) == std::string::npos) {
      if (buffer.size() > kMaxLineBytes) {
        SendAll(fd, "err bad-request request line over 64KiB\n");
        return;
      }
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // peer hung up, or RequestStop shut us down
      buffer.append(chunk, static_cast<size_t>(n));
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();

    LineResult result = handler->Handle(line);
    if (!result.response.empty() && !SendAll(fd, result.response)) return;
    if (result.stop_server) {
      RequestStop();
      return;
    }
    if (result.close_connection) return;
  }
}

void LineServer::RequestStop() {
  std::vector<int> to_shutdown;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    to_shutdown.assign(active_fds_.begin(), active_fds_.end());
  }
  // Unblock every handler stuck in recv: the peers see a clean EOF, the
  // loops see n <= 0. The fds stay open (their handler closes them), so
  // shutdown never races a number reuse.
  for (int fd : to_shutdown) ::shutdown(fd, SHUT_RDWR);
  SignalStop();  // wake the accept poll
  queue_cv_.notify_all();
}

void LineServer::SignalStop() {
  if (wake_fds_[1] < 0) return;
  char byte = 's';
  // A full pipe already has a wake pending; short/failed writes are fine.
  ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
  (void)ignored;
}

void LineServer::Wait() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || joined_) return;
    joined_ = true;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_host_.joinable()) pool_host_.join();
  pool_.reset();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
  listen_fd_ = wake_fds_[0] = wake_fds_[1] = -1;
}

void LineServer::Stop() {
  bool started;
  {
    std::lock_guard<std::mutex> lock(mu_);
    started = started_;
  }
  if (!started) {
    // Start may have half-opened fds before failing.
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
    if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
    listen_fd_ = wake_fds_[0] = wake_fds_[1] = -1;
    return;
  }
  RequestStop();
  Wait();
}

}  // namespace rescq
