#ifndef RESCQ_SERVER_ROUTER_H_
#define RESCQ_SERVER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "resilience/engine.h"
#include "server/client.h"
#include "server/line_server.h"
#include "server/server.h"
#include "server/shard_map.h"

namespace rescq {

/// One backend `rescq serve` address.
struct ShardSpec {
  std::string host;
  int port = 0;

  std::string Label() const { return host + ":" + std::to_string(port); }
};

/// Parses "host:port" (the `rescq route --shard` argument form).
bool ParseShardSpec(const std::string& text, ShardSpec* spec,
                    std::string* error);

/// How `rescq route` runs the sharding front-end.
struct RouterOptions {
  /// Numeric IPv4 address to bind.
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral one.
  int port = 0;
  /// Connection handler threads.
  int threads = 4;
  /// Backend shards, in ring order (the list must be identical — same
  /// order — on every router over the same fleet).
  std::vector<ShardSpec> shards;
  /// Virtual nodes per shard on the consistent-hash ring.
  size_t vnodes = 64;
  /// Deadlines on every backend LineClient.
  int connect_timeout_ms = 2000;
  int request_timeout_ms = 10000;
  /// Extra connect attempts after the first, with backoff_ms * attempt
  /// sleeps in between.
  int retries = 2;
  int backoff_ms = 50;
  /// After a shard is marked down, requests to it fail fast with
  /// `err shard_unavailable` for this long before the next probe.
  int down_cooldown_ms = 500;
  /// Honor the `shutdown` verb (broadcast to every shard, then stop).
  bool allow_shutdown = true;
};

/// The consistent-hash sharding front-end: speaks the rescq line
/// protocol on its own port, owns no sessions, and forwards every
/// session verb verbatim to the shard that owns the session's name
/// (ShardMap placement). `stats` and `sessions` with no current
/// session are scatter-gathered across all shards into one aggregated
/// reply.
///
/// Each router connection mirrors the protocol's per-connection state
/// (current session, pending epoch) by holding its own lazily-connected
/// LineClient per shard — forwarding stays verbatim because the backend
/// connection sees exactly the client's line sequence. Failure policy:
/// connect attempts are bounded (deadline + retry-with-backoff) and a
/// failing shard is marked down for down_cooldown_ms, during which its
/// requests fail fast with `err shard_unavailable`. A request that dies
/// mid-flight is retried (one reconnect + resend) only for idempotent
/// reads; mutating verbs surface the error instead of risking a
/// double-apply.
///
/// Lifecycle mirrors ResilienceServer: Start/port/RequestStop/
/// SignalStop (async-signal-safe)/Wait/Stop.
class ShardRouter {
 public:
  explicit ShardRouter(const RouterOptions& options);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  bool Start(std::string* error) { return transport_.Start(error); }
  int port() const { return transport_.port(); }
  void RequestStop() { transport_.RequestStop(); }
  void SignalStop() { transport_.SignalStop(); }
  void Wait() { transport_.Wait(); }
  void Stop() { transport_.Stop(); }

  const ShardMap& shard_map() const { return map_; }
  const RouterOptions& options() const { return options_; }

 private:
  friend class RouterConnection;

  /// Shared per-shard health + the session-less scatter-gather channel.
  struct ShardState {
    ShardSpec spec;
    std::mutex control_mu;
    LineClient control;  // guarded by control_mu; never selects a session
    std::atomic<int64_t> down_until_ms{0};
  };

  static LineServerOptions TransportOptions(const RouterOptions& options);

  const RouterOptions options_;
  ShardMap map_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  LineServer transport_;
};

/// `rescq route --shards N`: N self-contained serve instances (each its
/// own engine, registry, and ephemeral port) inside the router process.
/// Also the harness the router tests and bench_shard use.
class InProcessShards {
 public:
  InProcessShards() = default;
  ~InProcessShards() { Stop(); }

  InProcessShards(const InProcessShards&) = delete;
  InProcessShards& operator=(const InProcessShards&) = delete;

  /// Starts `count` servers configured from `base` (port is forced to
  /// 0). False with *error if any fails to start (all are stopped).
  bool Start(size_t count, const ServerOptions& base, std::string* error);

  std::vector<ShardSpec> specs() const;
  size_t count() const { return servers_.size(); }
  ResilienceServer* server(size_t i) { return servers_[i].get(); }

  void Stop();

 private:
  std::vector<std::unique_ptr<ResilienceEngine>> engines_;
  std::vector<std::unique_ptr<ResilienceServer>> servers_;
};

}  // namespace rescq

#endif  // RESCQ_SERVER_ROUTER_H_
