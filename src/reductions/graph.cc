#include "reductions/graph.h"

namespace rescq {

Graph RandomGraph(int n, uint64_t p_num, uint64_t p_den, Rng& rng) {
  Graph g;
  g.num_vertices = n;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.Chance(p_num, p_den)) g.edges.emplace_back(u, v);
    }
  }
  return g;
}

Graph CycleGraph(int n) {
  Graph g;
  g.num_vertices = n;
  for (int i = 0; i < n; ++i) {
    int j = (i + 1) % n;
    g.edges.emplace_back(std::min(i, j), std::max(i, j));
  }
  return g;
}

Graph CompleteGraph(int n) {
  Graph g;
  g.num_vertices = n;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.edges.emplace_back(u, v);
  }
  return g;
}

Graph PetersenGraph() {
  Graph g;
  g.num_vertices = 10;
  g.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4},   // outer cycle
             {5, 7}, {7, 9}, {6, 9}, {6, 8}, {5, 8},   // inner pentagram
             {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}};  // spokes
  return g;
}

}  // namespace rescq
