#include "reductions/sat_solver.h"

namespace rescq {

namespace {

enum class Val : char { kUnset, kTrue, kFalse };

struct Dpll {
  const CnfFormula& f;
  std::vector<Val> values;

  bool LiteralTrue(const Literal& l) const {
    Val v = values[static_cast<size_t>(l.var)];
    return (v == Val::kTrue && l.positive) || (v == Val::kFalse && !l.positive);
  }
  bool LiteralFalse(const Literal& l) const {
    Val v = values[static_cast<size_t>(l.var)];
    return (v == Val::kFalse && l.positive) || (v == Val::kTrue && !l.positive);
  }

  // Returns false on conflict; fills `unit` with a forced literal if any.
  bool FindUnit(const Literal** unit) const {
    *unit = nullptr;
    for (const Clause& c : f.clauses) {
      int unset = 0;
      const Literal* last_unset = nullptr;
      bool satisfied = false;
      for (const Literal& l : c.literals) {
        if (LiteralTrue(l)) {
          satisfied = true;
          break;
        }
        if (!LiteralFalse(l)) {
          ++unset;
          last_unset = &l;
        }
      }
      if (satisfied) continue;
      if (unset == 0) return false;  // conflict
      if (unset == 1 && *unit == nullptr) *unit = last_unset;
    }
    return true;
  }

  bool Solve() {
    // Unit propagation to fixpoint.
    std::vector<std::pair<int, Val>> trail;
    while (true) {
      const Literal* unit = nullptr;
      if (!FindUnit(&unit)) {
        for (auto& [var, old] : trail) values[static_cast<size_t>(var)] = old;
        return false;
      }
      if (unit == nullptr) break;
      trail.emplace_back(unit->var, values[static_cast<size_t>(unit->var)]);
      values[static_cast<size_t>(unit->var)] =
          unit->positive ? Val::kTrue : Val::kFalse;
    }
    int branch = -1;
    for (int v = 0; v < f.num_vars; ++v) {
      if (values[static_cast<size_t>(v)] == Val::kUnset) {
        branch = v;
        break;
      }
    }
    if (branch == -1) return true;  // all assigned, no conflict
    for (Val choice : {Val::kTrue, Val::kFalse}) {
      values[static_cast<size_t>(branch)] = choice;
      if (Solve()) return true;
    }
    values[static_cast<size_t>(branch)] = Val::kUnset;
    for (auto& [var, old] : trail) values[static_cast<size_t>(var)] = old;
    return false;
  }
};

}  // namespace

std::optional<std::vector<bool>> SolveSat(const CnfFormula& f) {
  Dpll dpll{f, std::vector<Val>(static_cast<size_t>(f.num_vars),
                                Val::kUnset)};
  if (!dpll.Solve()) return std::nullopt;
  std::vector<bool> assignment(static_cast<size_t>(f.num_vars), false);
  for (int v = 0; v < f.num_vars; ++v) {
    assignment[static_cast<size_t>(v)] =
        dpll.values[static_cast<size_t>(v)] == Val::kTrue;
  }
  return assignment;
}

bool IsSatisfiable(const CnfFormula& f) { return SolveSat(f).has_value(); }

}  // namespace rescq
