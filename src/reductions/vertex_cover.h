#ifndef RESCQ_REDUCTIONS_VERTEX_COVER_H_
#define RESCQ_REDUCTIONS_VERTEX_COVER_H_

#include <vector>

#include "reductions/graph.h"

namespace rescq {

/// Exact minimum vertex cover (branch and bound via the hitting-set
/// solver; graph edges are 2-element sets). Ground truth for the
/// VC-based hardness reductions.
struct VertexCoverResult {
  int size = 0;
  std::vector<int> cover;
};

VertexCoverResult MinVertexCover(const Graph& g);

}  // namespace rescq

#endif  // RESCQ_REDUCTIONS_VERTEX_COVER_H_
