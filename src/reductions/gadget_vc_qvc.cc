#include "reductions/gadget_vc_qvc.h"

#include "cq/parser.h"

namespace rescq {

VcQvcGadget BuildVcQvcGadget(const Graph& g) {
  VcQvcGadget out;
  out.query = MustParseQuery("R(x), S(x,y), R(y)");
  std::vector<Value> verts;
  for (int v = 0; v < g.num_vertices; ++v) {
    Value val = out.db.InternIndexed("v", v);
    verts.push_back(val);
    out.db.AddTuple("R", {val});
  }
  for (auto [u, v] : g.edges) {
    out.db.AddTuple("S", {verts[static_cast<size_t>(u)],
                          verts[static_cast<size_t>(v)]});
  }
  return out;
}

}  // namespace rescq
