#ifndef RESCQ_REDUCTIONS_SAT_SOLVER_H_
#define RESCQ_REDUCTIONS_SAT_SOLVER_H_

#include <optional>
#include <vector>

#include "reductions/cnf.h"

namespace rescq {

/// DPLL SAT solver (unit propagation + first-unassigned branching).
/// Built as the ground-truth substrate for validating the 3SAT hardness
/// gadgets; formulas there are tiny, so no watched literals or learning.
/// Returns a satisfying assignment, or nullopt if unsatisfiable.
std::optional<std::vector<bool>> SolveSat(const CnfFormula& f);

bool IsSatisfiable(const CnfFormula& f);

}  // namespace rescq

#endif  // RESCQ_REDUCTIONS_SAT_SOLVER_H_
