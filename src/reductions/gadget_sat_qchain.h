#ifndef RESCQ_REDUCTIONS_GADGET_SAT_QCHAIN_H_
#define RESCQ_REDUCTIONS_GADGET_SAT_QCHAIN_H_

#include "cq/query.h"
#include "db/database.h"
#include "reductions/cnf.h"

namespace rescq {

/// Proposition 10: the reduction 3SAT ≤ RES(q_chain) for
/// q_chain :- R(x,y), R(y,z). Witnesses of q_chain over a digraph are
/// consecutive edge pairs; the gadget follows Figure 10:
///
///  - Variable gadget: a directed cycle of 2m edges alternating
///    blue_j = R(v^j, v̄^j) ("v true") and red_j = R(v̄^j, v^{j+1})
///    ("v false"); breaking all 2m consecutive pairs costs exactly m,
///    achieved only by the all-blue or all-red selection.
///  - Clause gadget (9 tuples per clause): a triangle t1,t2,t3, feeders
///    s_i = R(x'_i, x_i), and connectors u_i from the literal's
///    variable-gadget node into x'_i. A satisfied clause costs 5, an
///    unsatisfied one 6.
///
/// Hence ρ(q_chain, D_ψ) = n·m + 5m iff ψ is satisfiable, and
/// ≥ n·m + 5m + 1 otherwise. (The paper's text quotes its own constant
/// for its exact bookkeeping; the construction here is verified
/// empirically against a DPLL solver in the test suite.)
struct SatChainGadget {
  Database db;
  Query query;
  int k;  // the satisfiability threshold n·m + 5m
};

/// Requires a 3-CNF (every clause has exactly 3 literals) with at least
/// one clause.
SatChainGadget BuildSatQchainGadget(const CnfFormula& f);

}  // namespace rescq

#endif  // RESCQ_REDUCTIONS_GADGET_SAT_QCHAIN_H_
