#ifndef RESCQ_REDUCTIONS_GADGET_VC_QCHAIN_H_
#define RESCQ_REDUCTIONS_GADGET_VC_QCHAIN_H_

#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "reductions/graph.h"

namespace rescq {

/// VC ≤ RES(q_chain) via the "or-property" path idea behind Independent
/// Join Paths (Figure 8): every vertex u becomes an edge
/// e_u = R(u_in, u_out), and every graph edge {u,v} becomes the 3-arc
/// path e_u -> p1 -> p2 -> e_v. If at least one endpoint tuple is
/// deleted, the leftover path is broken with 1 extra tuple; otherwise it
/// costs 2. Hence
///
///    ρ(q_chain, D_G) = VC(G) + |E(G)|.
struct VcChainGadget {
  Database db;
  Query query;
  int offset;  // |E(G)|: ρ = VC(G) + offset
  std::vector<TupleId> vertex_tuples;  // e_u per vertex
};

VcChainGadget BuildVcQchainGadget(const Graph& g);

}  // namespace rescq

#endif  // RESCQ_REDUCTIONS_GADGET_VC_QCHAIN_H_
