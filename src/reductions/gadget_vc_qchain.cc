#include "reductions/gadget_vc_qchain.h"

#include "cq/parser.h"
#include "util/string_util.h"

namespace rescq {

VcChainGadget BuildVcQchainGadget(const Graph& g) {
  VcChainGadget out;
  out.query = MustParseQuery("R(x,y), R(y,z)");
  out.offset = static_cast<int>(g.edges.size());
  Database& db = out.db;
  std::vector<Value> vin, vout;
  for (int v = 0; v < g.num_vertices; ++v) {
    vin.push_back(db.Intern(StrFormat("u%d_in", v)));
    vout.push_back(db.Intern(StrFormat("u%d_out", v)));
    out.vertex_tuples.push_back(db.AddTuple(
        "R", {vin[static_cast<size_t>(v)], vout[static_cast<size_t>(v)]}));
  }
  int edge_idx = 0;
  for (auto [u, v] : g.edges) {
    Value w = db.Intern(StrFormat("e%d_mid", edge_idx++));
    db.AddTuple("R", {vout[static_cast<size_t>(u)], w});  // p1
    db.AddTuple("R", {w, vin[static_cast<size_t>(v)]});   // p2
  }
  return out;
}

}  // namespace rescq
