#ifndef RESCQ_REDUCTIONS_GRAPH_H_
#define RESCQ_REDUCTIONS_GRAPH_H_

#include <utility>
#include <vector>

#include "util/rng.h"

namespace rescq {

/// A simple undirected graph on vertices 0..num_vertices-1.
struct Graph {
  int num_vertices = 0;
  std::vector<std::pair<int, int>> edges;  // (u,v) with u < v, no dups
};

/// Erdős–Rényi G(n, p) with p = p_num / p_den.
Graph RandomGraph(int n, uint64_t p_num, uint64_t p_den, Rng& rng);

/// Named small graphs used in tests/benchmarks.
Graph CycleGraph(int n);
Graph CompleteGraph(int n);
Graph PetersenGraph();

}  // namespace rescq

#endif  // RESCQ_REDUCTIONS_GRAPH_H_
