#include "reductions/gadget_sat_qchain.h"

#include "cq/parser.h"
#include "util/check.h"
#include "util/string_util.h"

namespace rescq {

SatChainGadget BuildSatQchainGadget(const CnfFormula& f) {
  RESCQ_CHECK_GT(static_cast<int>(f.clauses.size()), 0);
  for (const Clause& c : f.clauses) {
    RESCQ_CHECK_EQ(static_cast<int>(c.literals.size()), 3);
  }
  SatChainGadget out;
  out.query = MustParseQuery("R(x,y), R(y,z)");
  Database& db = out.db;
  const int n = f.num_vars;
  const int m = static_cast<int>(f.clauses.size());
  out.k = n * m + 5 * m;

  // Variable-gadget node names: pos(v,j) = v^j, neg(v,j) = v̄^j
  // (segment indices taken mod m).
  auto pos_node = [&](int v, int j) {
    return db.Intern(StrFormat("v%d_p%d", v, j % m));
  };
  auto neg_node = [&](int v, int j) {
    return db.Intern(StrFormat("v%d_n%d", v, j % m));
  };
  // Variable gadgets: cycles blue_j = (v^j -> v̄^j), red_j = (v̄^j -> v^{j+1}).
  for (int v = 0; v < n; ++v) {
    for (int j = 0; j < m; ++j) {
      db.AddTuple("R", {pos_node(v, j), neg_node(v, j)});      // blue_j
      db.AddTuple("R", {neg_node(v, j), pos_node(v, j + 1)});  // red_j
    }
  }
  // Clause gadgets.
  for (int j = 0; j < m; ++j) {
    Value a = db.Intern(StrFormat("c%d_a", j));
    Value b = db.Intern(StrFormat("c%d_b", j));
    Value c = db.Intern(StrFormat("c%d_c", j));
    Value ap = db.Intern(StrFormat("c%d_a'", j));
    Value bp = db.Intern(StrFormat("c%d_b'", j));
    Value cp = db.Intern(StrFormat("c%d_c'", j));
    // Triangle t1,t2,t3.
    db.AddTuple("R", {a, b});
    db.AddTuple("R", {b, c});
    db.AddTuple("R", {c, a});
    // Feeders s1,s2,s3.
    db.AddTuple("R", {ap, a});
    db.AddTuple("R", {bp, b});
    db.AddTuple("R", {cp, c});
    // Connectors u1,u2,u3: from the node where the literal's "false
    // witness" lives. For a positive literal v the blue edge ends at
    // v̄^j, so u starts there; for a negative literal the red edge ends
    // at v^{j+1}.
    Value primed[3] = {ap, bp, cp};
    for (int i = 0; i < 3; ++i) {
      const Literal& lit = f.clauses[static_cast<size_t>(j)]
                               .literals[static_cast<size_t>(i)];
      Value from = lit.positive ? neg_node(lit.var, j)
                                : pos_node(lit.var, j + 1);
      db.AddTuple("R", {from, primed[i]});
    }
  }
  return out;
}

}  // namespace rescq
