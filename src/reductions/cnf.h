#ifndef RESCQ_REDUCTIONS_CNF_H_
#define RESCQ_REDUCTIONS_CNF_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace rescq {

/// A literal: variable index (0-based) with a sign.
struct Literal {
  int var;
  bool positive;
};

struct Clause {
  std::vector<Literal> literals;
};

/// A CNF formula over `num_vars` Boolean variables.
struct CnfFormula {
  int num_vars = 0;
  std::vector<Clause> clauses;

  std::string ToString() const;
};

/// True if `assignment` (one bool per variable) satisfies the formula.
bool Evaluate(const CnfFormula& f, const std::vector<bool>& assignment);

/// Number of clauses satisfied by `assignment`.
int CountSatisfied(const CnfFormula& f, const std::vector<bool>& assignment);

/// Random k-CNF: each clause picks `clause_size` distinct variables with
/// random signs. Requires clause_size <= num_vars.
CnfFormula RandomCnf(int num_vars, int num_clauses, int clause_size,
                     Rng& rng);

}  // namespace rescq

#endif  // RESCQ_REDUCTIONS_CNF_H_
