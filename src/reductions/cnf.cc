#include "reductions/cnf.h"

#include <algorithm>

#include "util/check.h"
#include "util/string_util.h"

namespace rescq {

std::string CnfFormula::ToString() const {
  std::vector<std::string> parts;
  for (const Clause& c : clauses) {
    std::string s = "(";
    for (size_t i = 0; i < c.literals.size(); ++i) {
      if (i > 0) s += " | ";
      if (!c.literals[i].positive) s += "!";
      s += StrFormat("x%d", c.literals[i].var);
    }
    s += ")";
    parts.push_back(std::move(s));
  }
  return Join(parts, " & ");
}

bool Evaluate(const CnfFormula& f, const std::vector<bool>& assignment) {
  return CountSatisfied(f, assignment) ==
         static_cast<int>(f.clauses.size());
}

int CountSatisfied(const CnfFormula& f, const std::vector<bool>& assignment) {
  RESCQ_CHECK_EQ(static_cast<int>(assignment.size()), f.num_vars);
  int count = 0;
  for (const Clause& c : f.clauses) {
    for (const Literal& l : c.literals) {
      if (assignment[static_cast<size_t>(l.var)] == l.positive) {
        ++count;
        break;
      }
    }
  }
  return count;
}

CnfFormula RandomCnf(int num_vars, int num_clauses, int clause_size,
                     Rng& rng) {
  RESCQ_CHECK_LE(clause_size, num_vars);
  CnfFormula f;
  f.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<int> vars(static_cast<size_t>(num_vars));
    for (int v = 0; v < num_vars; ++v) vars[static_cast<size_t>(v)] = v;
    // Partial Fisher-Yates for `clause_size` distinct variables.
    Clause clause;
    for (int i = 0; i < clause_size; ++i) {
      size_t j = static_cast<size_t>(i) +
                 rng.Below(static_cast<uint64_t>(num_vars - i));
      std::swap(vars[static_cast<size_t>(i)], vars[j]);
      clause.literals.push_back(
          Literal{vars[static_cast<size_t>(i)], rng.Chance(1, 2)});
    }
    f.clauses.push_back(std::move(clause));
  }
  return f;
}

}  // namespace rescq
