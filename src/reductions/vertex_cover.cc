#include "reductions/vertex_cover.h"

#include "resilience/exact_solver.h"

namespace rescq {

VertexCoverResult MinVertexCover(const Graph& g) {
  VertexCoverResult result;
  if (g.edges.empty()) return result;
  std::vector<std::vector<int>> sets;
  for (auto [u, v] : g.edges) sets.push_back({u, v});
  HittingSetResult hs = SolveMinHittingSet(sets);
  result.size = hs.size;
  result.cover = hs.chosen;
  return result;
}

}  // namespace rescq
