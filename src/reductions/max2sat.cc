#include "reductions/max2sat.h"

#include "util/check.h"

namespace rescq {

int MaxSatisfiableBruteForce(const CnfFormula& f) {
  RESCQ_CHECK_LE(f.num_vars, 24);
  int best = 0;
  uint32_t end = 1u << f.num_vars;
  std::vector<bool> assignment(static_cast<size_t>(f.num_vars), false);
  for (uint32_t mask = 0; mask < end; ++mask) {
    for (int v = 0; v < f.num_vars; ++v) {
      assignment[static_cast<size_t>(v)] = (mask >> v) & 1;
    }
    best = std::max(best, CountSatisfied(f, assignment));
    if (best == static_cast<int>(f.clauses.size())) break;
  }
  return best;
}

}  // namespace rescq
