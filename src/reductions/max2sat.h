#ifndef RESCQ_REDUCTIONS_MAX2SAT_H_
#define RESCQ_REDUCTIONS_MAX2SAT_H_

#include "reductions/cnf.h"

namespace rescq {

/// Maximum number of simultaneously satisfiable clauses, by exhaustive
/// search over assignments. Requires f.num_vars <= 24. Ground-truth
/// substrate for Max-2SAT-based hardness arguments (Propositions 39, 43,
/// 47 use Max-2SAT reductions).
int MaxSatisfiableBruteForce(const CnfFormula& f);

}  // namespace rescq

#endif  // RESCQ_REDUCTIONS_MAX2SAT_H_
