#ifndef RESCQ_REDUCTIONS_GADGET_VC_QVC_H_
#define RESCQ_REDUCTIONS_GADGET_VC_QVC_H_

#include "cq/query.h"
#include "db/database.h"
#include "reductions/graph.h"

namespace rescq {

/// Proposition 9: the reduction VC ≤ RES(q_vc) for
/// q_vc :- R(x), S(x,y), R(y). Vertices become R-tuples, edges S-tuples;
/// ρ(q_vc, D_G) equals the minimum vertex cover of G exactly:
///   (G, k) ∈ VC  ⟺  (D_G, k) ∈ RES(q_vc).
struct VcQvcGadget {
  Database db;
  Query query;
};

VcQvcGadget BuildVcQvcGadget(const Graph& g);

}  // namespace rescq

#endif  // RESCQ_REDUCTIONS_GADGET_VC_QVC_H_
