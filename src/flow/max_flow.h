#ifndef RESCQ_FLOW_MAX_FLOW_H_
#define RESCQ_FLOW_MAX_FLOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rescq {

/// Capacity value treated as infinite (edges that must never be cut).
inline constexpr int64_t kInfCapacity = int64_t{1} << 40;

/// Dinic max-flow over an explicit residual graph, with min-cut
/// extraction. Nodes are dense ints; edges carry a caller-supplied tag so
/// cut edges can be mapped back to domain objects (tuples).
class MaxFlow {
 public:
  explicit MaxFlow(int num_nodes);

  /// Adds a directed edge u -> v with the given capacity; returns the
  /// edge's index for later inspection. `tag` is an arbitrary caller id
  /// (-1 = untagged).
  int AddEdge(int u, int v, int64_t capacity, int64_t tag = -1);

  /// Adds a fresh node, returning its index.
  int AddNode();

  int num_nodes() const { return static_cast<int>(adj_.size()); }

  /// Computes the max flow from s to t. May be called once per instance.
  int64_t Compute(int s, int t);

  /// After Compute: indices of saturated edges crossing the s-side/t-side
  /// partition of the residual graph (a minimum cut).
  std::vector<int> MinCutEdges() const;

  /// After Compute: true if `node` is reachable from s in the residual
  /// graph.
  bool OnSourceSide(int node) const;

  struct Edge {
    int to;
    int64_t capacity;  // residual capacity
    int rev;           // index of the reverse edge in adj_[to]
    int64_t tag;
    bool forward;      // original (non-residual) edge
  };

  const Edge& edge(int idx) const;

 private:
  bool Bfs(int s, int t);
  int64_t Dfs(int u, int t, int64_t limit);

  std::vector<std::vector<Edge>> adj_;
  std::vector<std::pair<int, int>> edge_locator_;  // edge idx -> (node, slot)
  std::vector<int> level_;
  std::vector<size_t> iter_;
  int source_ = -1;
  bool computed_ = false;
};

}  // namespace rescq

#endif  // RESCQ_FLOW_MAX_FLOW_H_
