#include "flow/max_flow.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace rescq {

MaxFlow::MaxFlow(int num_nodes) : adj_(static_cast<size_t>(num_nodes)) {}

int MaxFlow::AddEdge(int u, int v, int64_t capacity, int64_t tag) {
  RESCQ_CHECK(!computed_);
  RESCQ_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  int idx = static_cast<int>(edge_locator_.size());
  // Record the slots first, then patch the forward edge's rev: when
  // u == v both pushes land in the same adjacency list, so computing the
  // reverse slot before the backward push (as this used to) points the
  // forward edge at itself and corrupts the residual graph.
  int forward_slot = static_cast<int>(adj_[static_cast<size_t>(u)].size());
  adj_[static_cast<size_t>(u)].push_back(Edge{v, capacity, 0, tag, true});
  int backward_slot = static_cast<int>(adj_[static_cast<size_t>(v)].size());
  adj_[static_cast<size_t>(v)].push_back(
      Edge{u, 0, forward_slot, tag, false});
  adj_[static_cast<size_t>(u)][static_cast<size_t>(forward_slot)].rev =
      backward_slot;
  edge_locator_.emplace_back(u, forward_slot);
  return idx;
}

int MaxFlow::AddNode() {
  RESCQ_CHECK(!computed_);
  adj_.emplace_back();
  return num_nodes() - 1;
}

bool MaxFlow::Bfs(int s, int t) {
  level_.assign(adj_.size(), -1);
  std::deque<int> queue = {s};
  level_[static_cast<size_t>(s)] = 0;
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop_front();
    for (const Edge& e : adj_[static_cast<size_t>(u)]) {
      if (e.capacity > 0 && level_[static_cast<size_t>(e.to)] < 0) {
        level_[static_cast<size_t>(e.to)] = level_[static_cast<size_t>(u)] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return level_[static_cast<size_t>(t)] >= 0;
}

int64_t MaxFlow::Dfs(int u, int t, int64_t limit) {
  if (u == t) return limit;
  for (size_t& i = iter_[static_cast<size_t>(u)];
       i < adj_[static_cast<size_t>(u)].size(); ++i) {
    Edge& e = adj_[static_cast<size_t>(u)][i];
    if (e.capacity <= 0 ||
        level_[static_cast<size_t>(e.to)] !=
            level_[static_cast<size_t>(u)] + 1) {
      continue;
    }
    int64_t pushed = Dfs(e.to, t, std::min(limit, e.capacity));
    if (pushed > 0) {
      e.capacity -= pushed;
      adj_[static_cast<size_t>(e.to)][static_cast<size_t>(e.rev)].capacity +=
          pushed;
      return pushed;
    }
  }
  return 0;
}

int64_t MaxFlow::Compute(int s, int t) {
  RESCQ_CHECK(!computed_);
  RESCQ_CHECK_NE(s, t);
  computed_ = true;
  source_ = s;
  int64_t flow = 0;
  while (Bfs(s, t)) {
    iter_.assign(adj_.size(), 0);
    while (int64_t pushed = Dfs(s, t, kInfCapacity)) flow += pushed;
  }
  return flow;
}

bool MaxFlow::OnSourceSide(int node) const {
  RESCQ_CHECK(computed_);
  return level_[static_cast<size_t>(node)] >= 0;
}

std::vector<int> MaxFlow::MinCutEdges() const {
  RESCQ_CHECK(computed_);
  // After the final (failed) BFS, level_ marks exactly the residual
  // s-side. Forward edges from the s-side to the t-side form a min cut.
  std::vector<int> cut;
  for (int idx = 0; idx < static_cast<int>(edge_locator_.size()); ++idx) {
    auto [u, slot] = edge_locator_[static_cast<size_t>(idx)];
    const Edge& e = adj_[static_cast<size_t>(u)][static_cast<size_t>(slot)];
    if (OnSourceSide(u) && !OnSourceSide(e.to)) cut.push_back(idx);
  }
  return cut;
}

const MaxFlow::Edge& MaxFlow::edge(int idx) const {
  auto [u, slot] = edge_locator_[static_cast<size_t>(idx)];
  return adj_[static_cast<size_t>(u)][static_cast<size_t>(slot)];
}

}  // namespace rescq
