#include "flow/bipartite.h"

#include "util/check.h"

namespace rescq {

BipartiteCover::BipartiteCover(int num_left, int num_right)
    : num_left_(num_left),
      num_right_(num_right),
      adj_(static_cast<size_t>(num_left)),
      match_left_(static_cast<size_t>(num_left), -1),
      match_right_(static_cast<size_t>(num_right), -1) {}

void BipartiteCover::AddEdge(int left, int right) {
  RESCQ_CHECK(!computed_);
  RESCQ_CHECK(left >= 0 && left < num_left_);
  RESCQ_CHECK(right >= 0 && right < num_right_);
  adj_[static_cast<size_t>(left)].push_back(right);
}

bool BipartiteCover::TryKuhn(int u, std::vector<bool>& visited) {
  for (int v : adj_[static_cast<size_t>(u)]) {
    if (visited[static_cast<size_t>(v)]) continue;
    visited[static_cast<size_t>(v)] = true;
    if (match_right_[static_cast<size_t>(v)] == -1 ||
        TryKuhn(match_right_[static_cast<size_t>(v)], visited)) {
      match_left_[static_cast<size_t>(u)] = v;
      match_right_[static_cast<size_t>(v)] = u;
      return true;
    }
  }
  return false;
}

void BipartiteCover::MarkAlternating(int u) {
  if (left_visited_[static_cast<size_t>(u)]) return;
  left_visited_[static_cast<size_t>(u)] = true;
  for (int v : adj_[static_cast<size_t>(u)]) {
    if (right_visited_[static_cast<size_t>(v)]) continue;
    right_visited_[static_cast<size_t>(v)] = true;
    if (match_right_[static_cast<size_t>(v)] != -1) {
      MarkAlternating(match_right_[static_cast<size_t>(v)]);
    }
  }
}

void BipartiteCover::Compute() {
  RESCQ_CHECK(!computed_);
  computed_ = true;
  for (int u = 0; u < num_left_; ++u) {
    std::vector<bool> visited(static_cast<size_t>(num_right_), false);
    if (TryKuhn(u, visited)) ++matching_size_;
  }
  // König: Z = vertices reachable from unmatched left vertices along
  // alternating paths; cover = (L \ Z) ∪ (R ∩ Z).
  left_visited_.assign(static_cast<size_t>(num_left_), false);
  right_visited_.assign(static_cast<size_t>(num_right_), false);
  for (int u = 0; u < num_left_; ++u) {
    if (match_left_[static_cast<size_t>(u)] == -1) MarkAlternating(u);
  }
  left_in_cover_.assign(static_cast<size_t>(num_left_), false);
  right_in_cover_.assign(static_cast<size_t>(num_right_), false);
  for (int u = 0; u < num_left_; ++u) {
    left_in_cover_[static_cast<size_t>(u)] =
        !left_visited_[static_cast<size_t>(u)];
  }
  for (int v = 0; v < num_right_; ++v) {
    right_in_cover_[static_cast<size_t>(v)] =
        right_visited_[static_cast<size_t>(v)];
  }
  // Isolated left vertices are never in Z's complement's useful part:
  // exclude lefts with no edges from the cover.
  for (int u = 0; u < num_left_; ++u) {
    if (adj_[static_cast<size_t>(u)].empty()) {
      left_in_cover_[static_cast<size_t>(u)] = false;
    }
  }
}

int BipartiteCover::CoverSize() const {
  RESCQ_CHECK(computed_);
  int n = 0;
  for (bool b : left_in_cover_) n += b ? 1 : 0;
  for (bool b : right_in_cover_) n += b ? 1 : 0;
  return n;
}

}  // namespace rescq
