#ifndef RESCQ_FLOW_BIPARTITE_H_
#define RESCQ_FLOW_BIPARTITE_H_

#include <vector>

namespace rescq {

/// Minimum vertex cover of a bipartite graph via König's theorem:
/// compute a maximum matching (Kuhn's algorithm), then take
/// (left \ Z) ∪ (right ∩ Z) where Z is the set of vertices reachable from
/// unmatched left vertices by alternating paths.
class BipartiteCover {
 public:
  BipartiteCover(int num_left, int num_right);

  void AddEdge(int left, int right);

  /// Computes a minimum vertex cover; call once.
  void Compute();

  int CoverSize() const;
  const std::vector<bool>& left_in_cover() const { return left_in_cover_; }
  const std::vector<bool>& right_in_cover() const { return right_in_cover_; }
  int MatchingSize() const { return matching_size_; }

 private:
  bool TryKuhn(int u, std::vector<bool>& visited);
  void MarkAlternating(int u);

  int num_left_;
  int num_right_;
  std::vector<std::vector<int>> adj_;   // left -> rights
  std::vector<int> match_left_;         // left -> matched right or -1
  std::vector<int> match_right_;        // right -> matched left or -1
  std::vector<bool> left_visited_;
  std::vector<bool> right_visited_;
  std::vector<bool> left_in_cover_;
  std::vector<bool> right_in_cover_;
  int matching_size_ = 0;
  bool computed_ = false;
};

}  // namespace rescq

#endif  // RESCQ_FLOW_BIPARTITE_H_
